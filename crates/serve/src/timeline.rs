//! The serving timeline: virtual-time windowed telemetry for one run.
//!
//! Whole-run aggregates say *how much* went wrong; the timeline says
//! *when and where*. The runtime feeds a [`TimelineBuilder`] from inside
//! its serial event loop — request dispositions at their arrival window,
//! batch starts and predicted-vs-observed residual samples at the batch's
//! dispatch window — so the finished [`Timeline`] is a pure function of
//! the run, bit-identical across `--jobs` settings and platforms like
//! every other serve artifact.
//!
//! Per (window, shard) the timeline reports arrivals, dispositions,
//! degradations, batch starts, queue-delay quantiles, the shard's running
//! residual EWMA ([`obs::ResidualTracker`]), and the window's SLO
//! error-budget burn rate; [`obs::SloPolicy`] turns those into `OBS0xx`
//! alerts (budget-burn, residual-drift, shard-starvation,
//! fault-window-entered, recalibrated). Every count lands in the window of the
//! *arrival* it belongs to, so per window and shard
//! `arrivals = served + missed + rejected + dropped` exactly — an
//! invariant the property tests pin.
//!
//! # JSON-lines schema (v1)
//!
//! [`Timeline::to_jsonl`] renders one JSON object per line, every value
//! an integer or plain string, hand-rolled like [`crate::ServeSummary`]
//! so the bytes are stable for golden comparison:
//!
//! * `{"v":1,"kind":"header",...}` — run shape: window width, window
//!   count, deadline, SLO budget, shard names.
//! * `{"v":1,"kind":"window","w":...,"shard":...}` — one line per
//!   (window, shard), dense over the run.
//! * `{"v":1,"kind":"residual","shard":...,"rung":...}` — final
//!   per-(shard, rung) EWMA cells.
//! * `{"v":1,"kind":"alert","code":"OBS001",...}` — fired alerts in
//!   (window, shard, code) order.
//!
//! [`Timeline::to_chrome_trace`] maps the same data onto Chrome
//! `trace_event` counters (`ph: "C"`, one track per shard) and instants
//! (alerts), with the trace clock *being* virtual time — microsecond
//! timestamps straight from the simulation.

use crate::calqueue::{CalendarQueue, EVENT_BUCKET_US};
use crate::faults::FaultPlan;
use crate::shard::Shard;
use netcut_obs as obs;
use obs::alert::{Alert, AlertCode, SloPolicy, WindowObservation};
use obs::residual::ResidualTracker;
use obs::window::WindowHistogram;
use std::fmt::Write as _;

/// Timeline parameters: window width, SLO policy, residual smoothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineConfig {
    /// Window width, microseconds of virtual time.
    pub window_us: u64,
    /// SLO policy alerts are evaluated under.
    pub slo: SloPolicy,
    /// Residual EWMA smoothing factor, ppm.
    pub alpha_ppm: u64,
}

impl Default for TimelineConfig {
    /// 100 ms windows (50 per default 5 s run), the default serving SLO
    /// policy, 1/8 residual smoothing.
    fn default() -> Self {
        TimelineConfig {
            window_us: 100_000,
            slo: SloPolicy::default(),
            alpha_ppm: obs::DEFAULT_ALPHA_PPM,
        }
    }
}

/// One (window, shard) cell of the finished timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowRow {
    /// Window index.
    pub window: u64,
    /// Window start, microseconds of virtual time.
    pub start_us: u64,
    /// Shard index.
    pub shard: usize,
    /// Requests routed to this shard arriving in this window.
    pub arrivals: u64,
    /// ... of which completed within the deadline.
    pub served: u64,
    /// ... of which completed late.
    pub missed: u64,
    /// ... of which were refused at admission.
    pub rejected: u64,
    /// ... of which were lost to drop faults.
    pub dropped: u64,
    /// Completions served below the shard's top rung.
    pub degraded: u64,
    /// Batches dispatched on this shard starting in this window.
    pub batches: u64,
    /// 95th-percentile queue delay of completions arriving here, µs.
    pub queue_p95_us: u64,
    /// Worst queue delay of completions arriving here, µs.
    pub queue_max_us: u64,
    /// Ladder generation serving this shard as of the window's end (0
    /// until the closed-loop controller performs a hot-swap).
    pub generation: u64,
    /// Shard's blended residual EWMA as of this window's end, ppm.
    pub residual_ppm: u64,
    /// Worst per-rung residual drift as of this window's end, ppm.
    pub drift_ppm: u64,
    /// SLO error-budget burn rate of this cell, ppm.
    pub burn_ppm: u64,
}

impl WindowRow {
    /// Missed + rejected + dropped.
    pub fn bad(&self) -> u64 {
        self.missed + self.rejected + self.dropped
    }
}

/// The finished timeline of one serve run.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Window width, microseconds.
    pub window_us: u64,
    /// Dense window count (every row's `window` is below this).
    pub windows: u64,
    /// Per-request deadline the run was scheduled against, µs.
    pub deadline_us: u64,
    /// SLO policy the alerts were evaluated under.
    pub slo: SloPolicy,
    /// Shard names, routing order.
    pub shard_names: Vec<String>,
    /// One row per (window, shard), windows outermost, dense.
    pub rows: Vec<WindowRow>,
    /// Final residual state, every (shard, rung) cell.
    pub residuals: ResidualTracker,
    /// Fired alerts, (window, shard, code) order.
    pub alerts: Vec<Alert>,
}

impl Timeline {
    /// Alert count per table code, [`AlertCode::ALL`] order.
    pub fn alert_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; AlertCode::ALL.len()];
        for a in &self.alerts {
            counts[a.code.index()] += 1;
        }
        counts
    }

    /// The window burning the SLO budget fastest, fleet-wide:
    /// `(window, start_us, burn_ppm)`. `None` for an empty timeline.
    pub fn worst_burn(&self) -> Option<(u64, u64, u64)> {
        let shards = self.shard_names.len() as u64;
        if shards == 0 {
            return None;
        }
        (0..self.windows)
            .map(|w| {
                let cells = &self.rows[(w * shards) as usize..((w + 1) * shards) as usize];
                let arrivals: u64 = cells.iter().map(|r| r.arrivals).sum();
                let bad: u64 = cells.iter().map(WindowRow::bad).sum();
                (
                    w,
                    w * self.window_us,
                    obs::burn_rate_ppm(bad, arrivals, self.slo.miss_budget_ppm),
                )
            })
            .max_by_key(|&(w, _, burn)| (burn, std::cmp::Reverse(w)))
    }

    /// Renders the schema-v1 JSON-lines document (see the module docs).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(256 * (self.rows.len() + 8));
        let names: Vec<String> = self
            .shard_names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect();
        let _ = writeln!(
            s,
            "{{\"v\":1,\"kind\":\"header\",\"window_us\":{},\"windows\":{},\"deadline_us\":{},\"miss_budget_ppm\":{},\"shards\":[{}]}}",
            self.window_us,
            self.windows,
            self.deadline_us,
            self.slo.miss_budget_ppm,
            names.join(","),
        );
        for r in &self.rows {
            // `gen` renders only on post-swap rows, so runs that never
            // recalibrate (including every committed golden) keep the v1
            // line bytes unchanged.
            let generation = if r.generation > 0 {
                format!(",\"gen\":{}", r.generation)
            } else {
                String::new()
            };
            let _ = writeln!(
                s,
                "{{\"v\":1,\"kind\":\"window\",\"w\":{},\"start_us\":{},\"shard\":{},\"arrivals\":{},\"served\":{},\"missed\":{},\"rejected\":{},\"dropped\":{},\"degraded\":{},\"batches\":{},\"queue_p95_us\":{},\"queue_max_us\":{}{generation},\"residual_ppm\":{},\"drift_ppm\":{},\"burn_ppm\":{}}}",
                r.window,
                r.start_us,
                r.shard,
                r.arrivals,
                r.served,
                r.missed,
                r.rejected,
                r.dropped,
                r.degraded,
                r.batches,
                r.queue_p95_us,
                r.queue_max_us,
                r.residual_ppm,
                r.drift_ppm,
                r.burn_ppm,
            );
        }
        for shard in 0..self.residuals.shards() {
            for rung in 0..self.residuals.rungs(shard) {
                let cell = self.residuals.cell(shard, rung);
                let _ = writeln!(
                    s,
                    "{{\"v\":1,\"kind\":\"residual\",\"shard\":{shard},\"rung\":{rung},\"ewma_ppm\":{},\"samples\":{}}}",
                    cell.ewma_ppm(),
                    cell.samples(),
                );
            }
        }
        for a in &self.alerts {
            let _ = writeln!(
                s,
                "{{\"v\":1,\"kind\":\"alert\",\"code\":\"{}\",\"name\":\"{}\",\"w\":{},\"t_us\":{},\"shard\":{},\"value_ppm\":{}}}",
                a.code.code(),
                a.code.name(),
                a.window,
                a.t_us,
                a.shard,
                a.value_ppm,
            );
        }
        s
    }

    /// Renders the timeline as a Chrome `trace_event` document. The trace
    /// clock is virtual time: a window's counters sit at its start
    /// microsecond, alerts at their exact virtual instant, one counter
    /// track (`tid`) per shard.
    pub fn to_chrome_trace(&self) -> String {
        let mut s = String::with_capacity(256 * (self.rows.len() + 8));
        s.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |line: String, s: &mut String| {
            if !first {
                s.push_str(",\n");
            }
            first = false;
            s.push_str(&line);
        };
        for r in &self.rows {
            push(
                format!(
                    "{{\"name\":\"serve.window ({})\",\"cat\":\"netcut\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"served\":{},\"missed\":{},\"rejected\":{},\"dropped\":{},\"degraded\":{},\"burn_ppm\":{}}}}}",
                    self.shard_names[r.shard],
                    r.start_us,
                    r.shard,
                    r.served,
                    r.missed,
                    r.rejected,
                    r.dropped,
                    r.degraded,
                    r.burn_ppm,
                ),
                &mut s,
            );
        }
        for a in &self.alerts {
            push(
                format!(
                    "{{\"name\":\"{} {}\",\"cat\":\"netcut\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"value_ppm\":{}}}}}",
                    a.code.code(),
                    a.code.name(),
                    a.t_us,
                    a.shard,
                    a.value_ppm,
                ),
                &mut s,
            );
        }
        s.push_str("\n]}\n");
        s
    }
}

/// One raw residual sample, queued on its batch's start time until
/// [`TimelineBuilder::finish`] folds them in virtual-time order.
#[derive(Debug, Clone, Copy)]
struct ResidualSample {
    shard: usize,
    rung: usize,
    predicted_us: u64,
    observed_us: u64,
}

/// One dense (window, shard) accumulator cell. An untouched cell reads
/// exactly like an untouched sparse entry used to: zero counts, and the
/// empty [`WindowHistogram`]'s quantile/max are 0.
#[derive(Debug, Clone, Default)]
struct Cell {
    arrivals: u64,
    served: u64,
    missed: u64,
    rejected: u64,
    dropped: u64,
    degraded: u64,
    batches: u64,
    queue: WindowHistogram,
}

/// Accumulates timeline facts from inside the runtime's serial event
/// loop. Everything is deterministic because every call site is.
///
/// Cells are a dense window-major vector indexed `w × shards + s`, grown
/// on first touch — every event is a bump of an indexed integer field,
/// with no string keys or map lookups on the runtime's hot path.
#[derive(Debug)]
pub(crate) struct TimelineBuilder {
    cfg: TimelineConfig,
    deadline_us: u64,
    shard_names: Vec<String>,
    ladder_lens: Vec<usize>,
    /// Dense (window, shard) cells, window-major.
    cells: Vec<Cell>,
    /// Highest window any event touched (`None` when no event landed).
    last_window: Option<u64>,
    /// Start of the most recently touched window — virtual time is nearly
    /// monotone across events, so caching one window's bounds turns almost
    /// every [`Self::cell_mut`] into a bounds check instead of a division.
    cached_start_us: u64,
    /// Cell index of the cached window's shard-0 cell.
    cached_base: usize,
    /// `true` once any event primed the cache.
    cache_live: bool,
    /// Residual samples keyed on batch start; the queue's FIFO tie-break
    /// reproduces the former `(start_us, push order)` sort exactly.
    samples: CalendarQueue<ResidualSample>,
    /// Fault windows opening per shard: `(window, shard, t_us, magnitude)`.
    fault_entries: Vec<(u64, usize, u64, u64)>,
    /// Hot-swaps landing per shard:
    /// `(window, shard, t_us, calib_ppm, generation)`.
    recalib_entries: Vec<(u64, usize, u64, u64, u64)>,
}

impl TimelineBuilder {
    /// Builds the recorder for a server's shards. Fault-window entries are
    /// plan-static, so they are indexed up front.
    pub(crate) fn new(cfg: TimelineConfig, shards: &[Shard], deadline_us: u64) -> Self {
        assert!(cfg.window_us > 0, "window width must be positive");
        let mut fault_entries = Vec::new();
        for (s, shard) in shards.iter().enumerate() {
            let FaultPlan { windows, .. } = &shard.faults;
            for w in windows {
                fault_entries.push((w.start_us / cfg.window_us, s, w.start_us, w.magnitude));
            }
        }
        fault_entries.sort_unstable();
        TimelineBuilder {
            cfg,
            deadline_us,
            shard_names: shards.iter().map(|s| s.name.clone()).collect(),
            ladder_lens: shards.iter().map(|s| s.ladder.len()).collect(),
            cells: Vec::new(),
            last_window: None,
            cached_start_us: 0,
            cached_base: 0,
            cache_live: false,
            samples: CalendarQueue::new(EVENT_BUCKET_US),
            fault_entries,
            recalib_entries: Vec::new(),
        }
    }

    /// The dense cell of `(t_us`'s window, `shard)`, grown on demand.
    fn cell_mut(&mut self, t_us: u64, shard: usize) -> &mut Cell {
        // Fast path: `t_us` lands in the most recently touched window
        // (wrapping_sub rejects both earlier and later windows in one
        // compare) — no division, no resize check.
        if self.cache_live && t_us.wrapping_sub(self.cached_start_us) < self.cfg.window_us {
            return &mut self.cells[self.cached_base + shard];
        }
        let w = t_us / self.cfg.window_us;
        let shards = self.shard_names.len();
        let needed = (w as usize + 1) * shards;
        if self.cells.len() < needed {
            self.cells.resize_with(needed, Cell::default);
        }
        self.last_window = Some(self.last_window.map_or(w, |l| l.max(w)));
        self.cached_start_us = w * self.cfg.window_us;
        self.cached_base = w as usize * shards;
        self.cache_live = true;
        &mut self.cells[self.cached_base + shard]
    }

    /// The closed-loop controller recalibrated `shard` at `t_us`,
    /// hot-swapping in ladder generation `generation` with calibration
    /// factor `calib_ppm`.
    pub(crate) fn recalibrated(
        &mut self,
        t_us: u64,
        shard: usize,
        generation: u64,
        calib_ppm: u64,
    ) {
        self.recalib_entries.push((
            t_us / self.cfg.window_us,
            shard,
            t_us,
            calib_ppm,
            generation,
        ));
    }

    /// A request arriving at `t_us` was dropped on `shard`.
    pub(crate) fn dropped(&mut self, t_us: u64, shard: usize) {
        let cell = self.cell_mut(t_us, shard);
        cell.arrivals += 1;
        cell.dropped += 1;
    }

    /// A request arriving at `t_us` was rejected at admission on `shard`.
    pub(crate) fn rejected(&mut self, t_us: u64, shard: usize) {
        let cell = self.cell_mut(t_us, shard);
        cell.arrivals += 1;
        cell.rejected += 1;
    }

    /// A request arriving at `arrival_us` completed on `shard`. Counted in
    /// its *arrival* window, so the per-window disposition invariant holds.
    pub(crate) fn completion(
        &mut self,
        arrival_us: u64,
        shard: usize,
        missed: bool,
        degraded: bool,
        queue_delay_us: u64,
    ) {
        let cell = self.cell_mut(arrival_us, shard);
        cell.arrivals += 1;
        if missed {
            cell.missed += 1;
        } else {
            cell.served += 1;
        }
        if degraded {
            cell.degraded += 1;
        }
        cell.queue.observe(queue_delay_us);
    }

    /// A batch started on `shard` at `start_us`. Ladder batches
    /// (`rung.is_some()`) contribute a residual sample comparing the
    /// predicted batch latency against the observed (noise- and
    /// fault-scaled) service time.
    pub(crate) fn batch(
        &mut self,
        start_us: u64,
        shard: usize,
        rung: Option<usize>,
        predicted_us: u64,
        observed_us: u64,
    ) {
        self.cell_mut(start_us, shard).batches += 1;
        if let Some(rung) = rung {
            self.samples.push(
                start_us,
                ResidualSample {
                    shard,
                    rung,
                    predicted_us,
                    observed_us,
                },
            );
        }
    }

    /// Folds everything into the finished [`Timeline`]: residual samples
    /// in virtual-time order, dense (window, shard) rows, alerts in
    /// (window, shard, code) order.
    pub(crate) fn finish(mut self) -> Timeline {
        let shards = self.shard_names.len();
        let last_fault = self.fault_entries.iter().map(|&(w, ..)| w).max();
        let last_recalib = self.recalib_entries.iter().map(|&(w, ..)| w).max();
        let windows = self
            .last_window
            .into_iter()
            .chain(last_fault)
            .chain(last_recalib)
            .max()
            .map_or(0, |w| w + 1);
        // Fault/recalib entries can reach past the last event window:
        // extend the dense cells so every row reads a real (empty) cell.
        self.cells
            .resize_with((windows as usize) * shards, Cell::default);
        self.recalib_entries.sort_unstable();
        let mut residuals = ResidualTracker::new(&self.ladder_lens, self.cfg.alpha_ppm);
        let mut rows = Vec::with_capacity((windows as usize) * shards);
        let mut alerts = Vec::new();
        let mut generations = vec![0u64; shards];
        for w in 0..windows {
            // Residual state "as of the end of window w": fold every batch
            // that started inside it before reading the EWMAs. The queue
            // pops in (start, push order) — the former sorted order.
            let window_end_us = (w + 1) * self.cfg.window_us - 1;
            while let Some((_, s)) = self.samples.pop_at_or_before(window_end_us) {
                residuals.observe(s.shard, s.rung, s.predicted_us, s.observed_us);
            }
            let base = (w as usize) * shards;
            let fleet_arrivals: u64 = self.cells[base..base + shards]
                .iter()
                .map(|c| c.arrivals)
                .sum();
            for (s, shard_generation) in generations.iter_mut().enumerate() {
                let cell = &self.cells[base + s];
                let arrivals = cell.arrivals;
                let served = cell.served;
                let missed = cell.missed;
                let rejected = cell.rejected;
                let dropped = cell.dropped;
                let bad = missed + rejected + dropped;
                // First swap landing in this (window, shard), if any; the
                // row's generation reflects every swap through the window.
                let mut recalib: Option<(u64, u64)> = None;
                for &(rw, rs, t_us, calib_ppm, generation) in &self.recalib_entries {
                    if rw == w && rs == s {
                        if recalib.is_none() {
                            recalib = Some((t_us, calib_ppm));
                        }
                        *shard_generation = (*shard_generation).max(generation);
                    }
                }
                let row = WindowRow {
                    window: w,
                    start_us: w * self.cfg.window_us,
                    shard: s,
                    arrivals,
                    served,
                    missed,
                    rejected,
                    dropped,
                    degraded: cell.degraded,
                    batches: cell.batches,
                    queue_p95_us: cell.queue.quantile(950_000),
                    queue_max_us: cell.queue.max(),
                    generation: *shard_generation,
                    residual_ppm: residuals.blended(s).ewma_ppm(),
                    drift_ppm: residuals.max_drift_ppm(s),
                    burn_ppm: obs::burn_rate_ppm(bad, arrivals, self.cfg.slo.miss_budget_ppm),
                };
                let fault = self
                    .fault_entries
                    .iter()
                    .filter(|&&(fw, fs, ..)| fw == w && fs == s)
                    .map(|&(_, _, t_us, magnitude)| (t_us, magnitude))
                    .min();
                let mut fired = self.cfg.slo.evaluate(&WindowObservation {
                    window: w,
                    start_us: row.start_us,
                    shard: s,
                    arrivals,
                    bad,
                    fleet_arrivals,
                    max_drift_ppm: row.drift_ppm,
                    drift_samples: residuals.shard_samples(s),
                    fault_entered_ppm: fault.map(|(_, magnitude)| magnitude),
                    recalibrated_ppm: recalib.map(|(_, calib_ppm)| calib_ppm),
                });
                // OBS004 anchors at the fault window's exact opening
                // instant, not the telemetry window's start; OBS005
                // likewise at the swap's exact watermark instant.
                if let Some((t_us, _)) = fault {
                    for a in &mut fired {
                        if a.code == AlertCode::FaultWindowEntered {
                            a.t_us = t_us;
                        }
                    }
                }
                if let Some((t_us, _)) = recalib {
                    for a in &mut fired {
                        if a.code == AlertCode::Recalibrated {
                            a.t_us = t_us;
                        }
                    }
                }
                alerts.extend(fired);
                rows.push(row);
            }
        }
        Timeline {
            window_us: self.cfg.window_us,
            windows,
            deadline_us: self.deadline_us,
            slo: self.cfg.slo,
            shard_names: self.shard_names,
            rows,
            residuals,
            alerts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultKind, FaultWindow};
    use crate::ladder::{Rung, TrnLadder};

    fn shard(name: &str, faults: FaultPlan) -> Shard {
        Shard {
            name: name.to_owned(),
            ladder: TrnLadder::from_rungs(vec![
                Rung {
                    name: "cut1".into(),
                    cutpoint: 1,
                    latency_us: 100,
                    accuracy: 0.7,
                },
                Rung {
                    name: "cut0".into(),
                    cutpoint: 0,
                    latency_us: 700,
                    accuracy: 0.9,
                },
            ]),
            workers: 1,
            faults,
            noise_ppm: Vec::new(),
        }
    }

    fn builder(shards: &[Shard]) -> TimelineBuilder {
        TimelineBuilder::new(TimelineConfig::default(), shards, 900)
    }

    #[test]
    fn dispositions_land_in_their_arrival_window() {
        let shards = vec![shard("a", FaultPlan::none())];
        let mut b = builder(&shards);
        b.completion(10, 0, false, false, 5);
        b.completion(150_000, 0, true, true, 800);
        b.rejected(160_000, 0);
        b.dropped(250_000, 0);
        b.batch(10, 0, Some(1), 700, 721);
        let tl = b.finish();
        assert_eq!(tl.windows, 3);
        assert_eq!(tl.rows.len(), 3);
        let row0 = &tl.rows[0];
        assert_eq!((row0.arrivals, row0.served, row0.batches), (1, 1, 1));
        let row1 = &tl.rows[1];
        assert_eq!(row1.arrivals, 2);
        assert_eq!((row1.missed, row1.rejected, row1.degraded), (1, 1, 1));
        assert_eq!(row1.queue_max_us, 800);
        let row2 = &tl.rows[2];
        assert_eq!((row2.arrivals, row2.dropped), (1, 1));
        for r in &tl.rows {
            assert_eq!(r.arrivals, r.served + r.missed + r.rejected + r.dropped);
        }
        // Residual: one sample, 721/700 = 1.03 → ppm, visible from its
        // window onward.
        assert_eq!(row0.residual_ppm, 1_030_000);
        assert_eq!(row2.residual_ppm, 1_030_000);
        assert_eq!(tl.residuals.cell(0, 1).samples(), 1);
    }

    #[test]
    fn fault_windows_raise_obs004_at_their_exact_instant() {
        let faults = FaultPlan {
            windows: vec![FaultWindow {
                kind: FaultKind::Jitter,
                start_us: 123_456,
                end_us: 200_000,
                magnitude: 1_250_000,
            }],
            seed: 0,
        };
        let shards = vec![shard("a", FaultPlan::none()), shard("b", faults)];
        let tl = builder(&shards).finish();
        // No traffic at all, but the fault entry still shapes the span.
        assert_eq!(tl.windows, 2);
        let obs004: Vec<&Alert> = tl
            .alerts
            .iter()
            .filter(|a| a.code == AlertCode::FaultWindowEntered)
            .collect();
        assert_eq!(obs004.len(), 1);
        assert_eq!(obs004[0].shard, 1);
        assert_eq!(obs004[0].window, 1);
        assert_eq!(obs004[0].t_us, 123_456);
        assert_eq!(obs004[0].value_ppm, 1_250_000);
        assert_eq!(tl.alert_counts(), vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn recalibration_raises_obs005_and_tags_generations() {
        let shards = vec![shard("a", FaultPlan::none())];
        let mut b = builder(&shards);
        b.completion(10, 0, false, false, 5);
        b.completion(150_000, 0, false, false, 5);
        b.recalibrated(123_456, 0, 1, 1_300_000);
        let tl = b.finish();
        let obs005: Vec<&Alert> = tl
            .alerts
            .iter()
            .filter(|a| a.code == AlertCode::Recalibrated)
            .collect();
        assert_eq!(obs005.len(), 1);
        assert_eq!(obs005[0].window, 1);
        assert_eq!(obs005[0].t_us, 123_456, "anchored at the swap instant");
        assert_eq!(obs005[0].value_ppm, 1_300_000);
        assert_eq!(tl.alert_counts(), vec![0, 0, 0, 0, 1]);
        // Generation is 0 before the swap window, 1 from it onward.
        assert_eq!(tl.rows[0].generation, 0);
        assert_eq!(tl.rows[1].generation, 1);
        // Post-swap rows render `gen`; pre-swap rows keep the v1 bytes.
        let doc = tl.to_jsonl();
        let window_lines: Vec<&str> = doc
            .lines()
            .filter(|l| l.contains("\"kind\":\"window\""))
            .collect();
        assert!(!window_lines[0].contains("\"gen\""));
        assert!(window_lines[1].contains(",\"gen\":1,"));
    }

    #[test]
    fn starved_shard_is_called_out() {
        let shards = vec![shard("a", FaultPlan::none()), shard("b", FaultPlan::none())];
        let mut b = builder(&shards);
        for i in 0..20 {
            b.completion(i * 1_000, 0, false, false, 0);
        }
        let tl = b.finish();
        let starved: Vec<&Alert> = tl
            .alerts
            .iter()
            .filter(|a| a.code == AlertCode::ShardStarvation)
            .collect();
        assert_eq!(starved.len(), 1);
        assert_eq!(starved[0].shard, 1);
        assert_eq!(starved[0].value_ppm, 20);
    }

    #[test]
    fn burn_alert_fires_on_a_bad_window() {
        let shards = vec![shard("a", FaultPlan::none())];
        let mut b = builder(&shards);
        for i in 0..20 {
            // Half the window's arrivals go bad: 50% miss rate against a
            // 5% budget = 10× burn, far past the 2× alert threshold.
            b.completion(i * 1_000, 0, i % 2 == 0, false, 0);
        }
        let tl = b.finish();
        assert_eq!(tl.rows[0].burn_ppm, 10_000_000);
        let burns: Vec<&Alert> = tl
            .alerts
            .iter()
            .filter(|a| a.code == AlertCode::BudgetBurn)
            .collect();
        assert_eq!(burns.len(), 1);
        assert_eq!(burns[0].value_ppm, 10_000_000);
        assert_eq!(tl.worst_burn(), Some((0, 0, 10_000_000)));
    }

    #[test]
    fn jsonl_is_stable_line_oriented_and_parseable() {
        let shards = vec![shard("a", FaultPlan::none())];
        let mut b = builder(&shards);
        b.completion(10, 0, false, false, 5);
        b.batch(10, 0, Some(0), 100, 100);
        let tl = b.finish();
        let doc = tl.to_jsonl();
        assert_eq!(doc, tl.to_jsonl());
        let lines: Vec<&str> = doc.lines().collect();
        // header + 1 window row + 2 residual rows (2 rungs), no alerts.
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"v\":1,\"kind\":\"header\",\"window_us\":100000,"));
        assert!(lines[1].contains("\"kind\":\"window\""));
        assert!(lines[2].contains("\"kind\":\"residual\""));
        for line in &lines {
            let _: serde_json::Value = line.parse().expect("every line is valid JSON");
        }
        let trace = tl.to_chrome_trace();
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(trace.ends_with("]}\n"));
    }

    #[test]
    fn empty_run_is_an_empty_timeline() {
        let shards = vec![shard("a", FaultPlan::none())];
        let tl = builder(&shards).finish();
        assert_eq!(tl.windows, 0);
        assert!(tl.rows.is_empty());
        assert!(tl.alerts.is_empty());
        assert_eq!(tl.worst_burn(), None);
        assert_eq!(tl.alert_counts(), vec![0, 0, 0, 0, 0]);
    }
}
