//! Property-based tests of the serving runtime — the three invariants the
//! design document promises:
//!
//! 1. Deadline accounting is honest: no request ever completes after its
//!    deadline without being counted a miss, and every counted outcome is
//!    consistent with its recorded latency.
//! 2. Ladder degradation is monotone: as queue delay grows, the selected
//!    rung index never increases — both for the policy in isolation and
//!    across all outcomes of a simulated run.
//! 3. Determinism: a fixed `(seed, rps)` produces bit-identical summaries
//!    at `--jobs 1` and `--jobs 8`.

use netcut_serve::{
    run_scenario, Batcher, FaultPlan, Rung, Scenario, ScenarioConfig, Server, ServerConfig, Shard,
    Status, TrnLadder, Workload, PPM,
};
use proptest::prelude::*;

/// Random ladder: strictly-increasing integer latencies via positive
/// increments, accuracy ascending with latency (as a Pareto set is).
fn ladder_strategy() -> impl Strategy<Value = TrnLadder> {
    prop::collection::vec(1u64..400, 1..12).prop_map(|increments| {
        let mut latency = 40u64;
        let rungs = increments
            .iter()
            .enumerate()
            .map(|(i, inc)| {
                latency += inc;
                Rung {
                    name: format!("net/cut{}", increments.len() - i),
                    cutpoint: increments.len() - i,
                    latency_us: latency,
                    accuracy: 0.4 + 0.5 * i as f64 / increments.len() as f64,
                }
            })
            .collect();
        TrnLadder::from_rungs(rungs)
    })
}

/// Random workload parameters kept small enough that each case simulates
/// in well under a millisecond.
fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        500u64..4000,
        20_000u64..120_000,
        0u64..300_000,
        0u64..1 << 48,
    )
        .prop_map(|(rps, duration_us, emg_share_ppm, seed)| Workload {
            rps,
            duration_us,
            emg_share_ppm,
            seed,
        })
}

fn server_config_strategy() -> impl Strategy<Value = ServerConfig> {
    (300u64..1500, 1usize..4, any::<bool>()).prop_map(|(deadline_us, workers, degrade)| {
        ServerConfig {
            deadline_us,
            workers,
            degrade,
            emg_service_us: 800,
            batch_max: 1,
            batch_slack_us: 0,
            exit_pin: None,
            sim_jobs: 1,
        }
    })
}

/// A ladder plus random nondecreasing batch-scaling curves (what scenario
/// construction computes analytically).
fn curved_ladder_strategy() -> impl Strategy<Value = TrnLadder> {
    (
        ladder_strategy(),
        prop::collection::vec(prop::collection::vec(0u64..400_000, 7), 12),
    )
        .prop_map(|(ladder, curve_steps)| {
            let curves = (0..ladder.len())
                .map(|r| {
                    let mut level = PPM;
                    let mut curve = vec![PPM];
                    for step in &curve_steps[r % curve_steps.len()] {
                        level += step;
                        curve.push(level);
                    }
                    curve
                })
                .collect();
            ladder.with_batch_curves(curves)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: a request that finishes past the deadline is always a
    /// miss, a served request always made the deadline, and requests that
    /// never ran carry no latency. The four statuses partition the stream.
    #[test]
    fn deadline_misses_are_never_miscounted(
        ladder in ladder_strategy(),
        workload in workload_strategy(),
        config in server_config_strategy(),
        fault_seed in 0u64..1 << 32,
    ) {
        let requests = workload.generate();
        let faults = FaultPlan::seeded_demo(
            fault_seed,
            workload.duration_us,
            &netcut_sim::DeviceModel::jetson_xavier(),
        );
        let deadline = config.deadline_us;
        let server = Server::new(ladder, config, faults);
        let outcomes = server.run(&requests);
        prop_assert_eq!(outcomes.len(), requests.len());
        for o in &outcomes {
            match o.status {
                Status::Served => prop_assert!(
                    o.latency_us <= deadline,
                    "id {} served at {} µs past deadline {}", o.id, o.latency_us, deadline
                ),
                Status::Missed => prop_assert!(
                    o.latency_us > deadline,
                    "id {} counted missed at {} µs within deadline {}", o.id, o.latency_us, deadline
                ),
                Status::Rejected | Status::Dropped => {
                    prop_assert_eq!(o.latency_us, 0);
                    prop_assert_eq!(o.service_us, 0);
                    prop_assert!(o.rung.is_none());
                }
            }
        }
    }

    /// Invariant 2a: the selection policy itself is monotone — more queue
    /// delay never selects a higher (slower) rung.
    #[test]
    fn rung_selection_is_monotone_in_queue_delay(
        ladder in ladder_strategy(),
        deadline_us in 100u64..2000,
        step in 1u64..50,
    ) {
        let mut last = ladder.select(0, deadline_us);
        let mut qd = 0;
        while qd < deadline_us + 200 {
            qd += step;
            let rung = ladder.select(qd, deadline_us);
            prop_assert!(
                rung <= last,
                "rung rose {last} -> {rung} as delay grew to {qd} µs"
            );
            last = rung;
        }
        prop_assert_eq!(ladder.select(deadline_us, deadline_us), 0);
    }

    /// Invariant 2b: across a whole simulated run, any visual request that
    /// waited longer than another was served an equal-or-faster rung.
    #[test]
    fn served_rungs_are_monotone_across_a_run(
        ladder in ladder_strategy(),
        workload in workload_strategy(),
        deadline_us in 300u64..1500,
        workers in 1usize..4,
    ) {
        let requests = workload.generate();
        let server = Server::new(
            ladder,
            ServerConfig {
                deadline_us,
                workers,
                degrade: true,
                emg_service_us: 800,
                batch_max: 1,
                batch_slack_us: 0,
                exit_pin: None,
                sim_jobs: 1,
            },
            FaultPlan::none(),
        );
        let mut by_delay: Vec<(u64, usize)> = server
            .run(&requests)
            .iter()
            .filter_map(|o| o.rung.map(|r| (o.queue_delay_us, r)))
            .collect();
        by_delay.sort();
        for pair in by_delay.windows(2) {
            let ((qd_a, rung_a), (qd_b, rung_b)) = (pair[0], pair[1]);
            prop_assert!(
                rung_b <= rung_a || qd_b == qd_a,
                "delay {qd_a} µs got rung {rung_a} but longer delay {qd_b} µs got rung {rung_b}"
            );
        }
    }
}

proptest! {
    // Each case explores the ladder twice (jobs 1 and jobs 8), so keep the
    // case count low and the simulated duration short.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Invariant 3: summaries are bit-identical across `--jobs` settings
    /// for any seed and rate.
    #[test]
    fn summaries_are_bit_identical_across_jobs(
        seed in 0u64..1 << 32,
        rps in 800u64..3200,
        degrade in any::<bool>(),
    ) {
        let cfg = |jobs| ScenarioConfig {
            rps,
            duration_us: 150_000,
            seed,
            jobs,
            degrade,
            ..ScenarioConfig::default()
        };
        let sequential = run_scenario(cfg(1));
        let parallel = run_scenario(cfg(8));
        prop_assert_eq!(sequential.to_json(), parallel.to_json());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batcher invariant 1: a server allowed batches of one behaves
    /// bit-for-bit like one whose slack budget forbids every join — the
    /// batched runtime strictly generalizes the unbatched one.
    #[test]
    fn batch_of_one_is_the_unbatched_path(
        ladder in curved_ladder_strategy(),
        workload in workload_strategy(),
        deadline_us in 300u64..1500,
        workers in 1usize..4,
    ) {
        let requests = workload.generate();
        let base = ServerConfig {
            deadline_us,
            workers,
            degrade: true,
            emg_service_us: 800,
            batch_max: 1,
            batch_slack_us: 300,
            exit_pin: None,
            sim_jobs: 1,
        };
        let unbatched = Server::new(ladder.clone(), base.clone(), FaultPlan::none());
        let no_slack = Server::new(
            ladder,
            ServerConfig { batch_max: 8, batch_slack_us: 0, ..base },
            FaultPlan::none(),
        );
        let a = unbatched.run(&requests);
        let b = no_slack.run(&requests);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.status, &y.status);
            prop_assert_eq!(x.latency_us, y.latency_us);
            prop_assert_eq!(x.rung, y.rung);
            prop_assert_eq!(x.batch_size, y.batch_size);
        }
    }

    /// Batcher invariant 2: at formation time, the planned batch never
    /// predicts a violation of its tightest member's deadline — for every
    /// batch of two or more, the batched latency fits the tightest slack.
    #[test]
    fn formation_never_predicts_a_tightest_member_miss(
        ladder in curved_ladder_strategy(),
        start_us in 0u64..2000,
        slacks in prop::collection::vec(0u64..2500, 1..10),
        batch_max in 1usize..8,
        slack_budget in 0u64..600,
        degrade in any::<bool>(),
    ) {
        let deadlines: Vec<u64> = slacks.iter().map(|s| start_us + s).collect();
        let batcher = Batcher { batch_max, slack_us: slack_budget };
        let (size, rung) = batcher.plan(&ladder, start_us, &deadlines, degrade);
        prop_assert!(size >= 1 && size <= batch_max.max(1));
        if size >= 2 {
            let tightest = *deadlines[..size].iter().min().expect("nonempty");
            let predicted = ladder.batch_latency_us(rung, size);
            prop_assert!(
                start_us + predicted <= tightest,
                "batch of {size} on rung {rung} predicts {predicted} µs past tightest slack {}",
                tightest - start_us
            );
            prop_assert!(
                predicted - ladder.batch_latency_us(rung, 1) <= slack_budget,
                "batching overhead exceeds the {slack_budget} µs budget"
            );
        }
    }

    /// Batcher invariant 3: formation is monotone in the slack budget —
    /// allowing more batching overhead never shrinks the planned batch.
    #[test]
    fn more_slack_never_shrinks_the_batch(
        ladder in curved_ladder_strategy(),
        start_us in 0u64..2000,
        slacks in prop::collection::vec(0u64..2500, 1..10),
        batch_max in 1usize..8,
        budget_lo in 0u64..600,
        budget_extra in 0u64..600,
        degrade in any::<bool>(),
    ) {
        let deadlines: Vec<u64> = slacks.iter().map(|s| start_us + s).collect();
        let tight = Batcher { batch_max, slack_us: budget_lo };
        let loose = Batcher { batch_max, slack_us: budget_lo + budget_extra };
        let (size_tight, _) = tight.plan(&ladder, start_us, &deadlines, degrade);
        let (size_loose, _) = loose.plan(&ladder, start_us, &deadlines, degrade);
        prop_assert!(
            size_loose >= size_tight,
            "budget {} formed {size_tight} but larger budget {} formed {size_loose}",
            budget_lo,
            budget_lo + budget_extra
        );
    }
}

/// Router invariant: under symmetric load on symmetric shards, no shard
/// starves — least-completion routing with lowest-index tie-breaks still
/// spreads work across the pool. Pinned on the two reference seeds.
#[test]
fn symmetric_shards_never_starve() {
    for seed in [11u64, 13] {
        let requests = Workload {
            rps: 3000,
            duration_us: 1_000_000,
            emg_share_ppm: 100_000,
            seed,
        }
        .generate();
        let ladder = || {
            TrnLadder::from_rungs(vec![
                Rung {
                    name: "net/cut1".into(),
                    cutpoint: 1,
                    latency_us: 150,
                    accuracy: 0.6,
                },
                Rung {
                    name: "net/cut0".into(),
                    cutpoint: 0,
                    latency_us: 700,
                    accuracy: 0.85,
                },
            ])
        };
        let shard = |name: &str| Shard {
            name: name.to_owned(),
            ladder: ladder(),
            workers: 1,
            faults: FaultPlan::none(),
            noise_ppm: Vec::new(),
        };
        let server = Server::with_shards(
            vec![shard("a"), shard("b")],
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        );
        let outcomes = server.run(&requests);
        let per_shard = [0usize, 1].map(|s| outcomes.iter().filter(|o| o.shard == s).count());
        let total = outcomes.len();
        for (s, &n) in per_shard.iter().enumerate() {
            assert!(
                n * 4 > total,
                "seed {seed}: shard {s} got {n} of {total} requests — starved"
            );
        }
    }
}

/// The full sharded + batched pipeline stays bit-identical across `--jobs`
/// settings — the property the CI matrix leg enforces end to end. Pinned
/// on the two reference seeds to keep ladder exploration cost bounded.
#[test]
fn sharded_batched_summaries_identical_across_jobs() {
    for seed in [11u64, 13] {
        let cfg = |jobs| ScenarioConfig {
            duration_us: 150_000,
            seed,
            jobs,
            batch_max: 8,
            shards: 2,
            ..ScenarioConfig::default()
        };
        let sequential = run_scenario(cfg(1));
        let parallel = run_scenario(cfg(8));
        assert_eq!(sequential.to_json(), parallel.to_json(), "seed {seed}");
    }
}

/// Noise attachment happens on the `jobs`-parallel pool; the resulting
/// request streams must nonetheless be identical (deterministic property,
/// no randomness beyond the scenario seed — a plain test).
#[test]
fn scenario_requests_identical_across_jobs() {
    let cfg = |jobs| ScenarioConfig {
        duration_us: 150_000,
        jobs,
        ..ScenarioConfig::default()
    };
    let a = Scenario::build(cfg(1));
    let b = Scenario::build(cfg(8));
    assert_eq!(a.requests.len(), b.requests.len());
    for (x, y) in a.requests.iter().zip(&b.requests) {
        assert_eq!(x.arrival_us, y.arrival_us);
        assert_eq!(x.noise_ppm, y.noise_ppm);
    }
    assert!(a.requests.iter().any(|r| r.noise_ppm != PPM));
}

// The calendar queue's drain order is exactly the reference semantics —
// a `BinaryHeap` over `Reverse((key, insertion seq))` — on random event
// sets interleaving pushes and pops, with key ranges narrow enough that
// same-timestamp ties are common (the FIFO tie-break is the part a
// bucket rewrite would most plausibly get wrong).
proptest! {
    #[test]
    fn calendar_queue_matches_binary_heap_ordering(
        bucket_width in 1u64..700,
        ops in prop::collection::vec((any::<bool>(), 0u64..500), 1..300),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = netcut_serve::CalendarQueue::new(bucket_width);
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for (push, key) in ops {
            if push {
                // The payload is the insertion seq, so FIFO tie order is
                // observable in the popped values.
                q.push(key, seq);
                heap.push(Reverse((key, seq)));
                seq += 1;
            } else {
                let got = q.pop_min();
                let want = heap.pop().map(|Reverse((k, s))| (k, s));
                prop_assert_eq!(got, want);
            }
        }
        loop {
            let got = q.pop_min();
            let want = heap.pop().map(|Reverse((k, s))| (k, s));
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
