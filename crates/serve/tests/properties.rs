//! Property-based tests of the serving runtime — the three invariants the
//! design document promises:
//!
//! 1. Deadline accounting is honest: no request ever completes after its
//!    deadline without being counted a miss, and every counted outcome is
//!    consistent with its recorded latency.
//! 2. Ladder degradation is monotone: as queue delay grows, the selected
//!    rung index never increases — both for the policy in isolation and
//!    across all outcomes of a simulated run.
//! 3. Determinism: a fixed `(seed, rps)` produces bit-identical summaries
//!    at `--jobs 1` and `--jobs 8`.

use netcut_serve::{
    run_scenario, FaultPlan, Rung, Scenario, ScenarioConfig, Server, ServerConfig, Status,
    TrnLadder, Workload, PPM,
};
use proptest::prelude::*;

/// Random ladder: strictly-increasing integer latencies via positive
/// increments, accuracy ascending with latency (as a Pareto set is).
fn ladder_strategy() -> impl Strategy<Value = TrnLadder> {
    prop::collection::vec(1u64..400, 1..12).prop_map(|increments| {
        let mut latency = 40u64;
        let rungs = increments
            .iter()
            .enumerate()
            .map(|(i, inc)| {
                latency += inc;
                Rung {
                    name: format!("net/cut{}", increments.len() - i),
                    cutpoint: increments.len() - i,
                    latency_us: latency,
                    accuracy: 0.4 + 0.5 * i as f64 / increments.len() as f64,
                }
            })
            .collect();
        TrnLadder::from_rungs(rungs)
    })
}

/// Random workload parameters kept small enough that each case simulates
/// in well under a millisecond.
fn workload_strategy() -> impl Strategy<Value = Workload> {
    (
        500u64..4000,
        20_000u64..120_000,
        0u64..300_000,
        0u64..1 << 48,
    )
        .prop_map(|(rps, duration_us, emg_share_ppm, seed)| Workload {
            rps,
            duration_us,
            emg_share_ppm,
            seed,
        })
}

fn server_config_strategy() -> impl Strategy<Value = ServerConfig> {
    (300u64..1500, 1usize..4, any::<bool>()).prop_map(|(deadline_us, workers, degrade)| {
        ServerConfig {
            deadline_us,
            workers,
            degrade,
            emg_service_us: 800,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: a request that finishes past the deadline is always a
    /// miss, a served request always made the deadline, and requests that
    /// never ran carry no latency. The four statuses partition the stream.
    #[test]
    fn deadline_misses_are_never_miscounted(
        ladder in ladder_strategy(),
        workload in workload_strategy(),
        config in server_config_strategy(),
        fault_seed in 0u64..1 << 32,
    ) {
        let requests = workload.generate();
        let faults = FaultPlan::seeded_demo(
            fault_seed,
            workload.duration_us,
            &netcut_sim::DeviceModel::jetson_xavier(),
        );
        let deadline = config.deadline_us;
        let server = Server::new(ladder, config, faults);
        let outcomes = server.run(&requests);
        prop_assert_eq!(outcomes.len(), requests.len());
        for o in &outcomes {
            match o.status {
                Status::Served => prop_assert!(
                    o.latency_us <= deadline,
                    "id {} served at {} µs past deadline {}", o.id, o.latency_us, deadline
                ),
                Status::Missed => prop_assert!(
                    o.latency_us > deadline,
                    "id {} counted missed at {} µs within deadline {}", o.id, o.latency_us, deadline
                ),
                Status::Rejected | Status::Dropped => {
                    prop_assert_eq!(o.latency_us, 0);
                    prop_assert_eq!(o.service_us, 0);
                    prop_assert!(o.rung.is_none());
                }
            }
        }
    }

    /// Invariant 2a: the selection policy itself is monotone — more queue
    /// delay never selects a higher (slower) rung.
    #[test]
    fn rung_selection_is_monotone_in_queue_delay(
        ladder in ladder_strategy(),
        deadline_us in 100u64..2000,
        step in 1u64..50,
    ) {
        let mut last = ladder.select(0, deadline_us);
        let mut qd = 0;
        while qd < deadline_us + 200 {
            qd += step;
            let rung = ladder.select(qd, deadline_us);
            prop_assert!(
                rung <= last,
                "rung rose {last} -> {rung} as delay grew to {qd} µs"
            );
            last = rung;
        }
        prop_assert_eq!(ladder.select(deadline_us, deadline_us), 0);
    }

    /// Invariant 2b: across a whole simulated run, any visual request that
    /// waited longer than another was served an equal-or-faster rung.
    #[test]
    fn served_rungs_are_monotone_across_a_run(
        ladder in ladder_strategy(),
        workload in workload_strategy(),
        deadline_us in 300u64..1500,
        workers in 1usize..4,
    ) {
        let requests = workload.generate();
        let server = Server::new(
            ladder,
            ServerConfig { deadline_us, workers, degrade: true, emg_service_us: 800 },
            FaultPlan::none(),
        );
        let mut by_delay: Vec<(u64, usize)> = server
            .run(&requests)
            .iter()
            .filter_map(|o| o.rung.map(|r| (o.queue_delay_us, r)))
            .collect();
        by_delay.sort();
        for pair in by_delay.windows(2) {
            let ((qd_a, rung_a), (qd_b, rung_b)) = (pair[0], pair[1]);
            prop_assert!(
                rung_b <= rung_a || qd_b == qd_a,
                "delay {qd_a} µs got rung {rung_a} but longer delay {qd_b} µs got rung {rung_b}"
            );
        }
    }
}

proptest! {
    // Each case explores the ladder twice (jobs 1 and jobs 8), so keep the
    // case count low and the simulated duration short.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Invariant 3: summaries are bit-identical across `--jobs` settings
    /// for any seed and rate.
    #[test]
    fn summaries_are_bit_identical_across_jobs(
        seed in 0u64..1 << 32,
        rps in 800u64..3200,
        degrade in any::<bool>(),
    ) {
        let cfg = |jobs| ScenarioConfig {
            rps,
            duration_us: 150_000,
            seed,
            jobs,
            degrade,
            ..ScenarioConfig::default()
        };
        let sequential = run_scenario(cfg(1));
        let parallel = run_scenario(cfg(8));
        prop_assert_eq!(sequential.to_json(), parallel.to_json());
    }
}

/// Noise attachment happens on the `jobs`-parallel pool; the resulting
/// request streams must nonetheless be identical (deterministic property,
/// no randomness beyond the scenario seed — a plain test).
#[test]
fn scenario_requests_identical_across_jobs() {
    let cfg = |jobs| ScenarioConfig {
        duration_us: 150_000,
        jobs,
        ..ScenarioConfig::default()
    };
    let a = Scenario::build(cfg(1));
    let b = Scenario::build(cfg(8));
    assert_eq!(a.requests.len(), b.requests.len());
    for (x, y) in a.requests.iter().zip(&b.requests) {
        assert_eq!(x.arrival_us, y.arrival_us);
        assert_eq!(x.noise_ppm, y.noise_ppm);
    }
    assert!(a.requests.iter().any(|r| r.noise_ppm != PPM));
}
