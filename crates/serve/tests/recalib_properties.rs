//! Property tests of the closed recalibration loop — the invariants the
//! generation-tagged hot-swap must preserve:
//!
//! 1. Conservation: every timeline window of a recalibrating run still
//!    partitions its arrivals into served + missed + rejected + dropped —
//!    a swap never drops or double-counts an in-flight request.
//! 2. Admission tagging: every outcome carries the generation its shard
//!    was serving when the request arrived, so generations are
//!    nondecreasing in arrival order per shard and agree with the
//!    timeline's per-window generation column.
//! 3. Monotonicity: a shard's generation never moves backwards, and the
//!    summary's final generations match the timeline's last windows.
//! 4. Determinism: the recalibrating scenario's summary is bit-identical
//!    at `--jobs 1` and `--jobs 8`.

use netcut_serve::{Scenario, ScenarioConfig, ServeSummary};

/// The drifting scenario all properties run against: +30% thermal
/// throttle, demo faults off, one shard, loop closed with a short
/// cooldown so multiple swaps occur.
fn drifting_config(jobs: usize) -> ScenarioConfig {
    ScenarioConfig {
        duration_us: 1_200_000,
        jobs,
        faults: false,
        shards: 1,
        thermal_ppm: 1_300_000,
        recalibrate: true,
        recalib_cooldown_us: 200_000,
        ..ScenarioConfig::default()
    }
}

fn run_drifting(jobs: usize) -> (Scenario, ServeSummary) {
    let scenario = Scenario::try_build(drifting_config(jobs)).expect("drifting scenario builds");
    let summary = scenario.run_summary();
    (scenario, summary)
}

#[test]
fn windows_conserve_arrivals_across_swaps() {
    let (scenario, summary) = run_drifting(1);
    assert!(
        summary.recalibrations >= 2,
        "fixture must actually swap more than once, got {}",
        summary.recalibrations
    );
    let (_, timeline) = scenario.run_full();
    for row in &timeline.rows {
        assert_eq!(
            row.arrivals,
            row.served + row.missed + row.rejected + row.dropped,
            "window {} shard {} leaks requests across a swap",
            row.window,
            row.shard
        );
    }
    // And run-wide, straight from the outcomes.
    assert_eq!(
        summary.total,
        summary.served + summary.missed + summary.rejected + summary.dropped
    );
}

#[test]
fn outcomes_carry_their_admission_generation() {
    let (scenario, _) = run_drifting(1);
    let (outcomes, timeline) = scenario.run_full();

    // Nondecreasing in arrival order per shard (outcomes are in request
    // order, which is arrival order).
    let shard_count = timeline.shard_names.len();
    let mut last_gen = vec![0u64; shard_count];
    for o in &outcomes {
        assert!(
            o.generation >= last_gen[o.shard],
            "request {} regressed shard {} from generation {} to {}",
            o.id,
            o.shard,
            last_gen[o.shard],
            o.generation
        );
        last_gen[o.shard] = o.generation;
    }
    assert!(
        last_gen.iter().any(|&g| g > 0),
        "fixture must reach a swapped generation"
    );

    // Each outcome's generation agrees with the timeline: a request
    // arriving in a window can be at most the generation the window ends
    // at, and at least the generation the previous window ended at.
    for o in &outcomes {
        let w = (o.arrival_us / timeline.window_us).min(timeline.windows - 1);
        let row = |win: u64| &timeline.rows[(win as usize) * shard_count + o.shard];
        let upper = row(w).generation;
        let lower = if w == 0 { 0 } else { row(w - 1).generation };
        assert!(
            o.generation >= lower && o.generation <= upper,
            "request {} (arrival {} µs) has generation {}, outside window {}'s [{lower}, {upper}]",
            o.id,
            o.arrival_us,
            o.generation,
            w
        );
    }
}

#[test]
fn timeline_generations_are_monotone_and_match_the_summary() {
    let (scenario, summary) = run_drifting(1);
    let (_, timeline) = scenario.run_full();
    let shard_count = timeline.shard_names.len();
    for shard in 0..shard_count {
        let gens: Vec<u64> = (0..timeline.windows)
            .map(|w| timeline.rows[(w as usize) * shard_count + shard].generation)
            .collect();
        assert!(
            gens.windows(2).all(|p| p[0] <= p[1]),
            "shard {shard} generation went backwards: {gens:?}"
        );
        assert_eq!(
            *gens.last().unwrap(),
            summary.generations[shard],
            "summary must report shard {shard}'s final generation"
        );
    }
    assert_eq!(
        summary.recalibrations,
        summary.generations.iter().sum::<u64>(),
        "every swap bumps exactly one shard's generation by one"
    );
}

#[test]
fn recalibrating_summaries_are_bit_identical_across_jobs() {
    let (scenario_seq, summary_seq) = run_drifting(1);
    let (scenario_par, summary_par) = run_drifting(8);
    assert_eq!(
        summary_seq.to_json(),
        summary_par.to_json(),
        "recalibrating summaries must be bit-identical at --jobs 1 and --jobs 8"
    );
    assert!(summary_seq.recalibrations > 0);
    // The timelines (including OBS005 alert placement) match too.
    let (_, tl_seq) = scenario_seq.run_full();
    let (_, tl_par) = scenario_par.run_full();
    assert_eq!(tl_seq.to_jsonl(), tl_par.to_jsonl());
}
