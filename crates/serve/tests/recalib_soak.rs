//! Drift soak tests for the closed recalibration loop: a deterministic
//! thermal-throttle window inflates observed service time +30% mid-run
//! and the controller must sense it (OBS002), refit + hot-swap at most
//! once per cooldown (OBS005), and recover the miss rate.
//!
//! The scenario is the drift leg of the reference matrix at soak length:
//! demo faults off and a single shard, so the thermal window is the only
//! drift the controller sees and the recovery comparison is exact.

use netcut_obs::alert::AlertCode;
use netcut_serve::{Scenario, ScenarioConfig, Timeline, WindowRow};

/// Soak duration: 3 s of virtual time (~6000 requests at the default
/// 2000 rps). The thermal window spans exactly 25%–85% of it.
const DURATION_US: u64 = 3_000_000;

/// +30% observed service time while the throttle window is open.
const THERMAL_PPM: u64 = 1_300_000;

/// Two percentage points, in ppm: the recovery tolerance between the
/// pre-drift and post-swap window miss rates.
const RECOVERY_TOLERANCE_PPM: u64 = 20_000;

fn soak_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        duration_us: DURATION_US,
        seed,
        faults: false,
        shards: 1,
        thermal_ppm: THERMAL_PPM,
        recalibrate: true,
        ..ScenarioConfig::default()
    }
}

/// Aggregate miss rate (ppm of arrivals) over a set of timeline rows.
fn miss_rate_ppm<'a>(rows: impl Iterator<Item = &'a WindowRow>) -> u64 {
    let (mut bad, mut arrivals) = (0u64, 0u64);
    for r in rows {
        bad += r.missed;
        arrivals += r.arrivals;
    }
    assert!(arrivals > 0, "window set must contain traffic");
    bad * 1_000_000 / arrivals
}

fn swap_times(timeline: &Timeline) -> Vec<u64> {
    timeline
        .alerts
        .iter()
        .filter(|a| a.code == AlertCode::Recalibrated)
        .map(|a| a.t_us)
        .collect()
}

fn assert_drift_soak_recovers(seed: u64) {
    let scenario = Scenario::try_build(soak_config(seed)).expect("soak scenario builds");
    let cfg = scenario.recalib_config();
    let (_, timeline) = scenario.run_full();

    let thermal_start = DURATION_US / 100 * 25;

    // The sensing half: the throttle must push the residual EWMA past the
    // SLO drift tolerance, so OBS002 fires while the window is open.
    let drift_alerts: Vec<u64> = timeline
        .alerts
        .iter()
        .filter(|a| a.code == AlertCode::ResidualDrift)
        .map(|a| a.t_us)
        .collect();
    assert!(
        drift_alerts.iter().any(|&t| t >= thermal_start),
        "seed {seed}: OBS002 must fire inside the thermal window, alerts at {drift_alerts:?}"
    );

    // The acting half: at least one swap, and never two within a cooldown.
    let swaps = swap_times(&timeline);
    assert!(
        !swaps.is_empty(),
        "seed {seed}: the controller must recalibrate at least once"
    );
    assert!(
        swaps[0] >= thermal_start,
        "seed {seed}: no swap before the drift exists (first at {} µs)",
        swaps[0]
    );
    for pair in swaps.windows(2) {
        assert!(
            pair[1] - pair[0] >= cfg.cooldown_us,
            "seed {seed}: swaps at {} and {} µs violate the {} µs cooldown",
            pair[0],
            pair[1],
            cfg.cooldown_us
        );
    }
    assert!(
        swaps.len() as u64 <= DURATION_US / cfg.cooldown_us + 1,
        "seed {seed}: {} swaps cannot fit one-per-cooldown in {} µs",
        swaps.len(),
        DURATION_US
    );

    // The recovery guarantee: once the last swap has settled for one full
    // window, the per-window miss rate is back within 2 pp of the
    // pre-drift (throttle-free, generation-0) windows.
    let pre_drift = miss_rate_ppm(
        timeline
            .rows
            .iter()
            .filter(|r| r.start_us + timeline.window_us <= thermal_start),
    );
    let settled = swaps.last().expect("at least one swap") + timeline.window_us;
    let post_swap = miss_rate_ppm(timeline.rows.iter().filter(|r| r.start_us >= settled));
    println!("seed {seed}: swaps {swaps:?}, pre-drift {pre_drift} ppm, post-swap {post_swap} ppm");
    assert!(
        post_swap <= pre_drift + RECOVERY_TOLERANCE_PPM,
        "seed {seed}: post-swap miss rate {post_swap} ppm must recover to within \
         {RECOVERY_TOLERANCE_PPM} ppm of the pre-drift {pre_drift} ppm"
    );
}

#[test]
fn drift_soak_recovers_at_seed_11() {
    assert_drift_soak_recovers(11);
}

#[test]
fn drift_soak_recovers_at_seed_13() {
    assert_drift_soak_recovers(13);
}

#[test]
fn open_loop_soak_never_swaps_and_keeps_missing() {
    // The ablation: the identical drifting scenario with the loop open
    // must record no OBS005, stay at generation 0, and miss strictly more
    // than the closed loop over the throttled region.
    let open = Scenario::try_build(ScenarioConfig {
        recalibrate: false,
        ..soak_config(11)
    })
    .expect("open-loop soak builds");
    let (_, open_tl) = open.run_full();
    assert!(swap_times(&open_tl).is_empty());
    assert!(open_tl.rows.iter().all(|r| r.generation == 0));

    let closed = Scenario::try_build(soak_config(11)).expect("closed-loop soak builds");
    let (_, closed_tl) = closed.run_full();
    let thermal_start = DURATION_US / 100 * 25;
    let throttled =
        |r: &&WindowRow| r.start_us >= thermal_start && r.start_us < DURATION_US / 100 * 85;
    assert!(
        miss_rate_ppm(closed_tl.rows.iter().filter(throttled))
            < miss_rate_ppm(open_tl.rows.iter().filter(throttled)),
        "closing the loop must reduce the throttled-region miss rate"
    );
}
