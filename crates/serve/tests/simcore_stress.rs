//! The million-request stress leg's determinism contract: the summary and
//! the full timeline are byte-identical whether the finalization pricing
//! pass runs on 1 worker or 8 (`ScenarioConfig::jobs` feeds
//! `ServerConfig::sim_jobs`). This is the cross-shard-merge guarantee the
//! SoA event loop makes — parallelism may only trade wall-clock time,
//! never a byte of output — checked at the scale the `bench_simcore` CI
//! leg actually runs.

use netcut_serve::{stress_scenario, Scenario, ScenarioConfig};

/// The stress scenario at `seed`, with the pricing pass on `jobs` workers.
fn cfg(seed: u64, jobs: usize) -> ScenarioConfig {
    let (_, base) = stress_scenario();
    ScenarioConfig { seed, jobs, ..base }
}

#[test]
fn stress_summary_and_timeline_identical_at_jobs_1_and_8() {
    if cfg!(debug_assertions) {
        // ~10⁶ requests per run; only worth the wall-clock with optimized
        // code. The release suite (CI tier-1 and the bench job) runs it.
        eprintln!("skipped: stress-scale determinism check runs in release only");
        return;
    }
    for seed in [11u64, 13] {
        let serial = Scenario::build(cfg(seed, 1));
        let parallel = Scenario::build(cfg(seed, 8));
        assert!(
            serial.requests.len() >= 1_000_000,
            "stress leg shrank below a million requests (seed {seed}: {})",
            serial.requests.len()
        );

        let (out_1, tl_1) = serial.run_full();
        let (out_8, tl_8) = parallel.run_full();
        assert_eq!(out_1, out_8, "outcomes diverged across jobs at seed {seed}");
        assert_eq!(
            tl_1.to_jsonl(),
            tl_8.to_jsonl(),
            "timeline diverged across jobs at seed {seed}"
        );

        // Summaries from the outcomes already in hand (no second run):
        // exactly what `run_summary` aggregates.
        let summarize = |scenario: &Scenario, outcomes, timeline| {
            let meta = netcut_serve::RunMeta::from_server(
                &scenario.server(),
                stress_scenario().1.duration_us,
            );
            let mut summary = netcut_serve::ServeSummary::from_outcomes(outcomes, &meta);
            summary.attach_timeline(timeline);
            summary.to_json()
        };
        assert_eq!(
            summarize(&serial, &out_1, &tl_1),
            summarize(&parallel, &out_8, &tl_8),
            "summary diverged across jobs at seed {seed}"
        );
    }
}
