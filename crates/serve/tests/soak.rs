//! Soak tests: long steady request streams with one fault window of each
//! class injected mid-run. Each test asserts the fault actually bites
//! while its window is open, and — the recovery guarantee — that the
//! server is back to serving the top (most accurate) rung within a
//! bounded number of requests after the fault clears, and stays there for
//! the rest of the stream.
//!
//! The streams use uniform arrivals and neutral noise so the baseline
//! behaviour is exact: without faults every request is served at the top
//! rung with zero queue delay, which makes "recovered" unambiguous.

use netcut_serve::{
    FaultKind, FaultPlan, FaultWindow, Request, RequestKind, Rung, Server, ServerConfig, Status,
    TrnLadder, PPM,
};

/// Uniform visual-only stream: one request every `gap_us` for
/// `duration_us`, neutral noise.
fn steady_stream(gap_us: u64, duration_us: u64) -> Vec<Request> {
    (1..)
        .map(|i| Request {
            id: i - 1,
            arrival_us: i * gap_us,
            kind: RequestKind::Visual,
            noise_ppm: PPM,
        })
        .take_while(|r| r.arrival_us < duration_us)
        .collect()
}

fn ladder() -> TrnLadder {
    let rung = |name: &str, cutpoint, latency_us, accuracy| Rung {
        name: name.to_string(),
        cutpoint,
        latency_us,
        accuracy,
    };
    TrnLadder::from_rungs(vec![
        rung("net/cut3", 3, 100, 0.60),
        rung("net/cut2", 2, 300, 0.70),
        rung("net/cut1", 1, 600, 0.80),
        rung("net/cut0", 0, 700, 0.85),
    ])
}

fn config() -> ServerConfig {
    ServerConfig {
        deadline_us: 900,
        workers: 1,
        degrade: true,
        emg_service_us: 800,
        batch_max: 1,
        batch_slack_us: 0,
        exit_pin: None,
        sim_jobs: 1,
    }
}

const STREAM_US: u64 = 6_000_000; // 6 s, 4000 requests at 1.5 ms spacing
const GAP_US: u64 = 1_500;
const FAULT_START: u64 = 2_000_000;
const FAULT_END: u64 = 2_400_000;

/// How many post-fault requests the server is allowed before it must be
/// back at the top rung for good. One worker at 47% utilization drains
/// any residual backlog almost immediately; 32 requests (48 ms) is ample.
const RECOVERY_BOUND: usize = 32;

fn run_with_fault(window: FaultWindow) -> Vec<netcut_serve::RequestOutcome> {
    let faults = FaultPlan {
        windows: vec![window],
        seed: 11,
    };
    Server::new(ladder(), config(), faults).run(&steady_stream(GAP_US, STREAM_US))
}

/// Splits outcomes into (during-window, after-window) by arrival time.
fn split_at_clear(
    outcomes: &[netcut_serve::RequestOutcome],
) -> (
    Vec<&netcut_serve::RequestOutcome>,
    Vec<&netcut_serve::RequestOutcome>,
) {
    let during = outcomes
        .iter()
        .filter(|o| (FAULT_START..FAULT_END).contains(&o.arrival_us))
        .collect();
    let after = outcomes
        .iter()
        .filter(|o| o.arrival_us >= FAULT_END)
        .collect();
    (during, after)
}

/// Asserts the recovery guarantee on the post-fault tail: the top rung is
/// reached within [`RECOVERY_BOUND`] requests and never left again.
fn assert_bounded_recovery(after: &[&netcut_serve::RequestOutcome]) {
    let top = ladder().top();
    let recovered = after
        .iter()
        .position(|o| o.rung == Some(top))
        .expect("server never returned to the top rung");
    assert!(
        recovered < RECOVERY_BOUND,
        "first top-rung service only {recovered} requests after the fault cleared"
    );
    for o in &after[recovered..] {
        assert_eq!(
            o.rung,
            Some(top),
            "relapsed below the top rung at t={} µs (id {})",
            o.arrival_us,
            o.id
        );
        assert_eq!(o.status, Status::Served);
    }
}

#[test]
fn baseline_without_faults_never_degrades() {
    let outcomes =
        Server::new(ladder(), config(), FaultPlan::none()).run(&steady_stream(GAP_US, STREAM_US));
    assert!(outcomes.len() > 3500);
    for o in &outcomes {
        assert_eq!(o.status, Status::Served);
        assert_eq!(o.rung, Some(ladder().top()));
        assert_eq!(o.queue_delay_us, 0);
    }
}

#[test]
fn recovers_from_device_jitter() {
    // 2.5× service time: the 700 µs top rung becomes 1750 µs — slower
    // than the 1.5 ms arrival gap — so backlog builds and the ladder must
    // absorb it.
    let outcomes = run_with_fault(FaultWindow {
        kind: FaultKind::Jitter,
        start_us: FAULT_START,
        end_us: FAULT_END,
        magnitude: 2_500_000,
    });
    let (during, after) = split_at_clear(&outcomes);
    let degraded = during
        .iter()
        .filter(|o| o.rung.is_some_and(|r| r < ladder().top()))
        .count();
    assert!(
        degraded > 10,
        "jitter window degraded only {degraded} requests"
    );
    assert_bounded_recovery(&after);
}

#[test]
fn recovers_from_a_worker_stall() {
    // The only worker stalls for the whole window: admission control
    // sheds arrivals (queue delay ≥ deadline) instead of queueing them,
    // which is exactly what makes recovery fast once the worker returns.
    let outcomes = run_with_fault(FaultWindow {
        kind: FaultKind::Stall,
        start_us: FAULT_START,
        end_us: FAULT_END,
        magnitude: 1,
    });
    let (during, after) = split_at_clear(&outcomes);
    let rejected = during
        .iter()
        .filter(|o| o.status == Status::Rejected)
        .count();
    assert!(
        rejected > 200,
        "stall window rejected only {rejected} of {} requests",
        during.len()
    );
    assert_bounded_recovery(&after);
}

#[test]
fn recovers_from_dropped_requests() {
    // Half the arrivals in the window are lost upstream. Drops create no
    // backlog, so service quality for the surviving requests must be
    // untouched and recovery immediate.
    let outcomes = run_with_fault(FaultWindow {
        kind: FaultKind::Drop,
        start_us: FAULT_START,
        end_us: FAULT_END,
        magnitude: PPM / 2,
    });
    let (during, after) = split_at_clear(&outcomes);
    let dropped = during
        .iter()
        .filter(|o| o.status == Status::Dropped)
        .count();
    assert!(
        (60..=210).contains(&dropped),
        "drop window lost {dropped} of {} requests",
        during.len()
    );
    for o in &during {
        if o.status != Status::Dropped {
            assert_eq!(o.rung, Some(ladder().top()));
            assert_eq!(o.status, Status::Served);
        }
    }
    assert!(after.iter().all(|o| o.status != Status::Dropped));
    assert_bounded_recovery(&after);
}
