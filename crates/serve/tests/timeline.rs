//! Determinism and accounting invariants of the windowed timeline.
//!
//! The timeline is part of the deterministic surface: at a fixed seed its
//! JSON-lines rendering must be byte-identical regardless of `jobs`
//! (parallelism only touches order-deterministic ladder construction and
//! noise precompute, never event ordering). These tests pin that, plus
//! the per-cell accounting identity and the alert behavior of a run that
//! is engineered to go badly.

use netcut_serve::{Scenario, ScenarioConfig};

/// A short but eventful configuration: both shards, batching, faults.
fn quick(seed: u64, jobs: usize) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        jobs,
        duration_us: 500_000,
        batch_max: 4,
        shards: 2,
        ..ScenarioConfig::default()
    }
}

fn jsonl(cfg: ScenarioConfig) -> String {
    let (_, timeline) = Scenario::build(cfg).run_full();
    timeline.to_jsonl()
}

#[test]
fn timeline_is_byte_identical_across_jobs_seed_11() {
    assert_eq!(jsonl(quick(11, 1)), jsonl(quick(11, 8)));
}

#[test]
fn timeline_is_byte_identical_across_jobs_seed_13() {
    assert_eq!(jsonl(quick(13, 1)), jsonl(quick(13, 8)));
}

#[test]
fn seeds_differ() {
    assert_ne!(jsonl(quick(11, 1)), jsonl(quick(13, 1)));
}

#[test]
fn every_window_cell_balances() {
    let (_, timeline) = Scenario::build(quick(11, 1)).run_full();
    assert!(!timeline.rows.is_empty(), "eventful run has rows");
    for row in &timeline.rows {
        assert_eq!(
            row.arrivals,
            row.served + row.missed + row.rejected + row.dropped,
            "window {} shard {}: every arrival is served, missed, rejected, \
             or dropped — exactly once, in its arrival window",
            row.window,
            row.shard
        );
        assert!(
            row.served + row.missed >= row.degraded,
            "degraded counts completed (served or missed) requests"
        );
        assert!(row.queue_p95_us <= row.queue_max_us);
    }
}

#[test]
fn every_shard_appears_in_every_window() {
    let (_, timeline) = Scenario::build(quick(11, 1)).run_full();
    let shards = timeline.shard_names.len();
    assert_eq!(shards, 2);
    assert_eq!(timeline.rows.len(), timeline.windows as usize * shards);
    for w in 0..timeline.windows {
        for s in 0..shards {
            let row = &timeline.rows[(w as usize) * shards + s];
            assert_eq!((row.window, row.shard), (w, s));
            assert_eq!(row.start_us, w * timeline.window_us);
        }
    }
}

#[test]
fn pinned_ladder_burns_budget_and_alerts() {
    // The no-degrade baseline under faults blows the 900 µs deadline
    // hard; the timeline must say so — nonzero burn and at least one
    // budget-burn (OBS001) alert.
    let cfg = ScenarioConfig {
        degrade: false,
        ..quick(11, 1)
    };
    let (_, timeline) = Scenario::build(cfg).run_full();
    assert!(
        timeline.rows.iter().any(|r| r.burn_ppm > 0),
        "a pinned ladder under faults burns SLO budget"
    );
    let counts = timeline.alert_counts();
    assert_eq!(counts.len(), 5);
    assert!(counts[0] > 0, "OBS001 budget-burn fires on the bad run");
    // Faults are on, so the fault-window-entered marker fires too.
    assert!(counts[3] > 0, "OBS004 marks the seeded fault windows");
}

#[test]
fn jsonl_roundtrips_through_the_summary_counts() {
    // The run-level summary and the timeline are two views of one run:
    // totals must agree.
    let scenario = Scenario::build(quick(11, 1));
    let summary = scenario.run_summary();
    let (_, timeline) = scenario.run_full();
    let arrivals: u64 = timeline.rows.iter().map(|r| r.arrivals).sum();
    let served: u64 = timeline.rows.iter().map(|r| r.served).sum();
    let missed: u64 = timeline.rows.iter().map(|r| r.missed).sum();
    assert_eq!(arrivals, summary.total);
    assert_eq!(served, summary.served);
    assert_eq!(missed, summary.missed);
    assert_eq!(timeline.alert_counts(), summary.alert_counts);
}
