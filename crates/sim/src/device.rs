use netcut_graph::LayerKind;
use serde::{Deserialize, Serialize};

/// Arithmetic precision of a deployed network.
///
/// The paper deploys with post-training INT8 quantization (§III-B-4);
/// FP32/FP16 are provided for the precision ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit floating point.
    Fp32,
    /// 16-bit floating point.
    Fp16,
    /// 8-bit integer (post-training quantized).
    Int8,
}

impl Precision {
    /// Compute-throughput multiplier relative to FP32.
    pub fn compute_speedup(self, device: &DeviceModel) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => device.fp16_speedup,
            Precision::Int8 => device.int8_speedup,
        }
    }

    /// Bytes per scalar relative to FP32 (memory-traffic scale factor).
    pub fn byte_scale(self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => 0.5,
            Precision::Int8 => 0.25,
        }
    }
}

/// Analytical model of an embedded accelerator.
///
/// Latency of one fused kernel is
/// `max(flops / effective_throughput, bytes / bandwidth) + launch_overhead`,
/// where the effective throughput folds in a per-operation-kind efficiency
/// and an occupancy term that penalizes kernels with too little parallelism
/// to fill the device (this is what makes latency non-linear in FLOPs for
/// narrow networks such as MobileNetV1 0.25).
///
/// # Example
///
/// ```
/// use netcut_sim::DeviceModel;
///
/// let xavier = DeviceModel::jetson_xavier();
/// assert!(xavier.peak_gflops > 1000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name used in reports.
    pub name: String,
    /// Peak FP32 throughput in GFLOP/s.
    pub peak_gflops: f64,
    /// FP16 compute speedup over FP32.
    pub fp16_speedup: f64,
    /// INT8 compute speedup over FP32.
    pub int8_speedup: f64,
    /// Main-memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Fixed cost of launching one kernel, in microseconds.
    pub kernel_overhead_us: f64,
    /// Extra cost added to each *profiled* layer when recording with
    /// CUDA-event-style instrumentation, in microseconds.
    pub event_overhead_us: f64,
    /// Relative standard deviation of run-to-run measurement noise.
    pub jitter_rel: f64,
    /// Output-element count at which a kernel reaches half of full
    /// occupancy (smaller kernels run at lower effective throughput).
    pub occupancy_half_elems: f64,
    /// DVFS clock-ramp penalty: short inference pipelines finish before
    /// the GPU reaches steady-state clocks, inflating their latency by up
    /// to this fraction. This is the main *non-linearity* of the device —
    /// the one the paper's RBF-SVR adapts to and linear regression cannot
    /// (§V-C).
    pub ramp_penalty: f64,
    /// Pipeline length (milliseconds of steady-state work) at which half
    /// of the ramp penalty still applies.
    pub ramp_halfpoint_ms: f64,
}

impl DeviceModel {
    /// NVIDIA Jetson Xavier-class preset — the paper's deployment target.
    ///
    /// Constants are calibrated so that the seven zoo networks land at the
    /// latency scale of the paper's Fig. 1 under INT8 with fusion
    /// (MobileNetV1 0.5 ≈ 0.36 ms, deadline 0.9 ms separating the
    /// MobileNetV1 family from the rest).
    pub fn jetson_xavier() -> Self {
        DeviceModel {
            name: "jetson-xavier".to_owned(),
            peak_gflops: 1400.0,
            fp16_speedup: 2.0,
            int8_speedup: 12.0,
            // Effective (achieved) bandwidth for batch-1 activation tensors,
            // well below the 137 GB/s peak.
            mem_bandwidth_gbs: 40.0,
            kernel_overhead_us: 5.0,
            event_overhead_us: 2.0,
            jitter_rel: 0.02,
            occupancy_half_elems: 40_000.0,
            ramp_penalty: 0.30,
            ramp_halfpoint_ms: 0.3,
        }
    }

    /// NVIDIA Jetson Nano-class preset — a weaker embedded target for the
    /// device ablation: no INT8 tensor cores (INT8 barely beats FP16),
    /// a third of the Xavier's compute, and slower memory.
    pub fn jetson_nano() -> Self {
        DeviceModel {
            name: "jetson-nano".to_owned(),
            peak_gflops: 472.0,
            fp16_speedup: 2.0,
            int8_speedup: 2.2,
            mem_bandwidth_gbs: 14.0,
            kernel_overhead_us: 9.0,
            event_overhead_us: 3.0,
            jitter_rel: 0.03,
            occupancy_half_elems: 25_000.0,
            ramp_penalty: 0.25,
            ramp_halfpoint_ms: 0.6,
        }
    }

    /// NVIDIA Tesla K20m-class preset — the paper's *training* device, used
    /// by the exploration-time cost model.
    pub fn tesla_k20m() -> Self {
        DeviceModel {
            name: "tesla-k20m".to_owned(),
            peak_gflops: 3520.0,
            fp16_speedup: 1.0,
            int8_speedup: 1.0,
            mem_bandwidth_gbs: 208.0,
            kernel_overhead_us: 8.0,
            event_overhead_us: 3.0,
            jitter_rel: 0.03,
            occupancy_half_elems: 150_000.0,
            ramp_penalty: 0.10,
            ramp_halfpoint_ms: 1.0,
        }
    }

    /// Looks a preset up by name — the form CLI flags and scenario configs
    /// use. Accepts the canonical report name (`jetson-xavier`), the
    /// underscore variant (`jetson_xavier`), and the bare model
    /// (`xavier` / `nano` / `k20m`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "jetson-xavier" | "jetson_xavier" | "xavier" => Some(Self::jetson_xavier()),
            "jetson-nano" | "jetson_nano" | "nano" => Some(Self::jetson_nano()),
            "tesla-k20m" | "tesla_k20m" | "k20m" => Some(Self::tesla_k20m()),
            _ => None,
        }
    }

    /// Efficiency (fraction of peak throughput) achieved by an operation
    /// kind at full occupancy. Depthwise convolutions are notoriously
    /// inefficient on GPUs; elementwise ops are bandwidth-limited.
    pub fn kind_efficiency(&self, kind: &LayerKind) -> f64 {
        match kind {
            LayerKind::Conv2d { kernel, .. } if *kernel == 1 => 0.50,
            LayerKind::Conv2d { .. } | LayerKind::Conv2dRect { .. } => 0.60,
            LayerKind::DepthwiseConv2d { .. } => 0.08,
            LayerKind::Dense { .. } => 0.35,
            LayerKind::BatchNorm
            | LayerKind::Activation(_)
            | LayerKind::Add
            | LayerKind::GlobalAvgPool => 0.10,
            LayerKind::MaxPool2d { .. } | LayerKind::AvgPool2d { .. } => 0.15,
            LayerKind::Concat
            | LayerKind::Input
            | LayerKind::Flatten
            | LayerKind::Dropout { .. } => 0.10,
        }
    }

    /// Occupancy factor in `(0, 1]` for a kernel producing `output_elements`
    /// scalars.
    pub fn occupancy(&self, output_elements: u64) -> f64 {
        let e = output_elements as f64;
        e / (e + self.occupancy_half_elems)
    }

    /// DVFS clock-ramp factor (≥ 1) applied to a whole inference whose
    /// steady-state duration is `steady_ms`: short pipelines pay up to
    /// `1 + ramp_penalty`.
    pub fn ramp_factor(&self, steady_ms: f64) -> f64 {
        1.0 + self.ramp_penalty * self.ramp_halfpoint_ms
            / (self.ramp_halfpoint_ms + steady_ms.max(0.0))
    }

    /// Service-time multiplier (parts-per-million) a serving runtime should
    /// assume while the device is transiently degraded — thermal throttling
    /// or a DVFS down-clock. Derived from the device's clock-ramp penalty
    /// and run-to-run jitter so slower, noisier devices degrade harder.
    /// Integer ppm so deadline-aware schedulers can stay in exact integer
    /// arithmetic.
    pub fn transient_slowdown_ppm(&self) -> u64 {
        let factor = 1.0 + self.ramp_penalty + 8.0 * self.jitter_rel;
        (factor * 1_000_000.0).round() as u64
    }

    /// Per-request service jitter half-range in parts-per-million: requests
    /// land uniformly in `[1 - jitter_rel, 1 + jitter_rel]` × nominal.
    pub fn jitter_ppm(&self) -> u64 {
        (self.jitter_rel * 1_000_000.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_slowdown_exceeds_steady_state() {
        for d in [
            DeviceModel::jetson_xavier(),
            DeviceModel::jetson_nano(),
            DeviceModel::tesla_k20m(),
        ] {
            assert!(
                d.transient_slowdown_ppm() > 1_000_000,
                "{} must slow down during a transient, got {} ppm",
                d.name,
                d.transient_slowdown_ppm()
            );
            assert!(d.jitter_ppm() > 0);
            assert!(d.jitter_ppm() < 1_000_000, "jitter below 100%");
        }
    }

    #[test]
    fn by_name_accepts_every_spelling() {
        for (name, canonical) in [
            ("jetson-xavier", "jetson-xavier"),
            ("jetson_xavier", "jetson-xavier"),
            ("xavier", "jetson-xavier"),
            ("jetson_nano", "jetson-nano"),
            ("nano", "jetson-nano"),
            ("k20m", "tesla-k20m"),
        ] {
            assert_eq!(DeviceModel::by_name(name).expect(name).name, canonical);
        }
        assert!(DeviceModel::by_name("tpu").is_none());
    }

    #[test]
    fn precision_scales() {
        let d = DeviceModel::jetson_xavier();
        assert_eq!(Precision::Fp32.compute_speedup(&d), 1.0);
        assert!(Precision::Int8.compute_speedup(&d) > Precision::Fp16.compute_speedup(&d));
        assert_eq!(Precision::Int8.byte_scale(), 0.25);
    }

    #[test]
    fn occupancy_monotone() {
        let d = DeviceModel::jetson_xavier();
        assert!(d.occupancy(1_000) < d.occupancy(100_000));
        assert!(d.occupancy(100_000_000) > 0.99);
    }

    #[test]
    fn depthwise_is_inefficient() {
        use netcut_graph::Padding;
        let d = DeviceModel::jetson_xavier();
        let dw = LayerKind::DepthwiseConv2d {
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
        };
        let conv = LayerKind::Conv2d {
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: Padding::Same,
        };
        assert!(d.kind_efficiency(&dw) < d.kind_efficiency(&conv) / 4.0);
    }
}
