//! Per-inference energy model — the other resource embedded systems
//! budget. Energy is not part of the paper's evaluation but is a natural
//! extension: TRNs save energy the same way they save latency, and a
//! battery-powered prosthetic cares about both.
//!
//! Energy per inference = compute energy (pJ/FLOP, precision-dependent)
//! + memory energy (pJ/byte of DRAM traffic) + kernel-launch energy
//! + static power integrated over the inference latency.

use crate::device::{DeviceModel, Precision};
use crate::fusion::fuse_network;
use crate::latency::{kernel_latency_ms, network_latency_ms};
use netcut_graph::Network;
use serde::{Deserialize, Serialize};

/// Energy coefficients of an embedded accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Compute energy per FP32 FLOP, picojoules.
    pub pj_per_flop_fp32: f64,
    /// INT8 compute-energy advantage (divide by this at INT8).
    pub int8_energy_gain: f64,
    /// FP16 compute-energy advantage.
    pub fp16_energy_gain: f64,
    /// DRAM access energy per byte, picojoules.
    pub pj_per_byte: f64,
    /// Energy per kernel launch, microjoules.
    pub kernel_overhead_uj: f64,
    /// Static (leakage + rail) power, watts.
    pub idle_power_w: f64,
}

impl EnergyModel {
    /// Jetson-Xavier-class coefficients (≈30 GFLOPS/W FP32 core
    /// efficiency, LPDDR4x memory, ~5 W static rail).
    pub fn jetson_xavier() -> Self {
        EnergyModel {
            pj_per_flop_fp32: 33.0,
            int8_energy_gain: 4.0,
            fp16_energy_gain: 2.0,
            pj_per_byte: 40.0,
            kernel_overhead_uj: 2.0,
            idle_power_w: 5.0,
        }
    }

    fn compute_gain(&self, precision: Precision) -> f64 {
        match precision {
            Precision::Fp32 => 1.0,
            Precision::Fp16 => self.fp16_energy_gain,
            Precision::Int8 => self.int8_energy_gain,
        }
    }

    /// Energy of one inference of `net`, millijoules.
    pub fn network_energy_mj(
        &self,
        net: &Network,
        device: &DeviceModel,
        precision: Precision,
    ) -> f64 {
        let kernels = fuse_network(net);
        let mut dynamic_pj = 0.0;
        for k in &kernels {
            dynamic_pj += k.flops as f64 * self.pj_per_flop_fp32 / self.compute_gain(precision);
            let bytes = (k.bytes_read + k.bytes_written) as f64 * precision.byte_scale();
            dynamic_pj += bytes * self.pj_per_byte;
        }
        let launch_mj = kernels.len() as f64 * self.kernel_overhead_uj * 1e-3;
        let latency_ms = network_latency_ms(net, device, precision);
        let static_mj = self.idle_power_w * latency_ms; // W·ms = mJ
        dynamic_pj * 1e-9 + launch_mj + static_mj
    }

    /// Per-kernel energy breakdown (millijoules per kernel, execution
    /// order), excluding the shared static term.
    pub fn kernel_energies_mj(
        &self,
        net: &Network,
        device: &DeviceModel,
        precision: Precision,
    ) -> Vec<f64> {
        fuse_network(net)
            .iter()
            .map(|k| {
                let compute =
                    k.flops as f64 * self.pj_per_flop_fp32 / self.compute_gain(precision) * 1e-9;
                let bytes = (k.bytes_read + k.bytes_written) as f64 * precision.byte_scale();
                let mem = bytes * self.pj_per_byte * 1e-9;
                let launch = self.kernel_overhead_uj * 1e-3;
                // Attribute static power by the kernel's share of latency.
                let static_mj = self.idle_power_w * kernel_latency_ms(k, device, precision);
                compute + mem + launch + static_mj
            })
            .collect()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::jetson_xavier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcut_graph::{zoo, HeadSpec};

    fn xavier() -> (EnergyModel, DeviceModel) {
        (EnergyModel::jetson_xavier(), DeviceModel::jetson_xavier())
    }

    #[test]
    fn bigger_networks_cost_more_energy() {
        let (e, d) = xavier();
        let small = e.network_energy_mj(&zoo::mobilenet_v1(0.25), &d, Precision::Int8);
        let big = e.network_energy_mj(&zoo::resnet50(), &d, Precision::Int8);
        assert!(big > small * 3.0, "{big} vs {small}");
    }

    #[test]
    fn int8_saves_energy() {
        let (e, d) = xavier();
        let net = zoo::mobilenet_v2(1.0);
        let fp32 = e.network_energy_mj(&net, &d, Precision::Fp32);
        let int8 = e.network_energy_mj(&net, &d, Precision::Int8);
        assert!(int8 < fp32 * 0.6, "int8 {int8} vs fp32 {fp32}");
    }

    #[test]
    fn energy_scale_is_plausible() {
        // A MobileNet inference on an embedded GPU costs single-digit
        // millijoules; ResNet tens of millijoules.
        let (e, d) = xavier();
        let mn = e.network_energy_mj(&zoo::mobilenet_v1(0.5), &d, Precision::Int8);
        assert!((1.0..=20.0).contains(&mn), "mobilenet {mn} mJ");
        let rn = e.network_energy_mj(&zoo::resnet50(), &d, Precision::Int8);
        assert!((10.0..=200.0).contains(&rn), "resnet {rn} mJ");
    }

    #[test]
    fn cutting_reduces_energy_monotonically() {
        let (e, d) = xavier();
        let net = zoo::resnet50();
        let head = HeadSpec::default();
        let mut prev = f64::INFINITY;
        for k in 0..net.num_blocks() {
            let trn = net.cut_blocks(k).expect("valid cut").with_head(&head);
            let mj = e.network_energy_mj(&trn, &d, Precision::Int8);
            assert!(mj < prev);
            prev = mj;
        }
    }

    #[test]
    fn kernel_breakdown_is_close_to_total() {
        let (e, d) = xavier();
        let net = zoo::squeezenet();
        let per_kernel: f64 = e.kernel_energies_mj(&net, &d, Precision::Int8).iter().sum();
        let total = e.network_energy_mj(&net, &d, Precision::Int8);
        // The breakdown omits the ramp contribution to static energy.
        assert!(per_kernel <= total + 1e-9);
        assert!(per_kernel > total * 0.8, "{per_kernel} vs {total}");
    }
}
