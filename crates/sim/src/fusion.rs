//! Layer fusion pass, mirroring the deployment optimization the paper
//! enables (§III-B-4): convolution + batch-norm + activation chains (and
//! residual adds) collapse into single kernels, eliminating intermediate
//! memory round-trips and kernel launches.

use netcut_graph::{LayerKind, Network, NodeId};

/// One fused device kernel: a primary node plus the chain of elementwise
/// nodes absorbed into it.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedKernel {
    /// Node whose operation dominates the kernel (first member).
    pub primary: NodeId,
    /// All member nodes in topological order (primary first).
    pub members: Vec<NodeId>,
    /// Summed FLOPs of all members.
    pub flops: u64,
    /// Bytes read from memory: inputs crossing the kernel boundary plus
    /// member weights (FP32 accounting; the device scales by precision).
    pub bytes_read: u64,
    /// The weight portion of [`bytes_read`](Self::bytes_read) — streamed
    /// once per batch rather than once per sample.
    pub weight_bytes: u64,
    /// Bytes written: the kernel's final output.
    pub bytes_written: u64,
    /// Elements of the kernel's final output (occupancy driver).
    pub output_elements: u64,
    /// Kind of the primary node (efficiency driver).
    pub primary_kind: LayerKind,
}

impl FusedKernel {
    /// The node producing this kernel's output (last member).
    pub fn tail(&self) -> NodeId {
        *self.members.last().expect("kernel has at least one member")
    }
}

/// `true` for kinds that can be absorbed into a preceding producer kernel.
/// Besides elementwise ops, global-average-pool and dense layers fuse into
/// their producer (TensorRT-style pooling/GEMM fusion) — this is what makes
/// the classification head nearly free on the real device, a property the
/// paper's ratio estimator implicitly relies on.
fn absorbable(kind: &LayerKind) -> bool {
    matches!(
        kind,
        LayerKind::BatchNorm
            | LayerKind::Activation(_)
            | LayerKind::Dropout { .. }
            | LayerKind::Flatten
            | LayerKind::Add
            | LayerKind::GlobalAvgPool
            | LayerKind::Dense { .. }
    )
}

/// Runs the fusion pass over `net`, returning the kernel list the device
/// would actually launch, in execution order.
///
/// A node is absorbed into the kernel producing its input when (a) its kind
/// is elementwise-fusable (batch-norm, activation, dropout, flatten, add),
/// and (b) that producer output has no other consumer. For `Add`, the
/// *latest* input in topological order is the fusion candidate (the residual
/// branch computed last), matching TensorRT-style conv+add+relu fusion.
pub fn fuse_network(net: &Network) -> Vec<FusedKernel> {
    let stats = net.layer_stats();
    let n = net.len();
    let mut consumers = vec![0usize; n];
    for node in net.nodes() {
        for &inp in node.inputs() {
            consumers[inp.index()] += 1;
        }
    }
    // kernel_of[node] = index into `kernels` whose tail is that node, if any.
    let mut kernel_of: Vec<Option<usize>> = vec![None; n];
    let mut kernels: Vec<FusedKernel> = Vec::new();
    for node in net.nodes() {
        let id = node.id();
        let kind = *node.kind();
        if matches!(kind, LayerKind::Input) {
            continue;
        }
        // Try to absorb into the kernel ending at the fusion-candidate
        // input.
        let candidate = if absorbable(&kind) {
            node.inputs().iter().copied().max_by_key(|i| i.index())
        } else {
            None
        };
        let absorbed = candidate.and_then(|cand| {
            if consumers[cand.index()] != 1 {
                return None;
            }
            let k_idx = kernel_of[cand.index()]?;
            Some(k_idx)
        });
        match absorbed {
            Some(k_idx) => {
                let ls = stats[id.index()];
                let kernel = &mut kernels[k_idx];
                kernel_of[kernel.tail().index()] = None;
                kernel.members.push(id);
                kernel.flops += ls.flops;
                // The absorbed node's weights still stream from memory, and
                // any *other* inputs (e.g. the residual branch of an Add)
                // cross the kernel boundary.
                kernel.bytes_read += ls.params * 4;
                kernel.weight_bytes += ls.params * 4;
                for &inp in node.inputs() {
                    if Some(inp) != candidate {
                        kernel.bytes_read += net.shape(inp).elements() as u64 * 4;
                    }
                }
                kernel.bytes_written = ls.bytes_written;
                // Occupancy is driven by the kernel's widest member: a
                // fused reduction (GAP/dense) shrinks the *output*, not the
                // parallelism of the dominant operation.
                kernel.output_elements = kernel.output_elements.max(ls.output_elements);
                kernel_of[id.index()] = Some(k_idx);
            }
            None => {
                let ls = stats[id.index()];
                kernels.push(FusedKernel {
                    primary: id,
                    members: vec![id],
                    flops: ls.flops,
                    bytes_read: ls.bytes_read,
                    weight_bytes: ls.params * 4,
                    bytes_written: ls.bytes_written,
                    output_elements: ls.output_elements,
                    primary_kind: kind,
                });
                kernel_of[id.index()] = Some(kernels.len() - 1);
            }
        }
    }
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcut_graph::{NetworkBuilder, Padding, Shape};

    #[test]
    fn conv_bn_relu_fuses_to_one_kernel() {
        let mut b = NetworkBuilder::new("f", Shape::map(3, 16, 16));
        let x = b.input();
        let y = b.conv_bn_relu(x, 8, 3, 1, Padding::Same, "c");
        let net = b.finish(y).unwrap();
        let kernels = fuse_network(&net);
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].members.len(), 3);
    }

    #[test]
    fn branch_point_blocks_fusion() {
        // conv feeds both a BN and a second conv: the BN must not absorb.
        let mut b = NetworkBuilder::new("f", Shape::map(3, 16, 16));
        let x = b.input();
        let c = b.conv(x, 8, 3, 1, Padding::Same, "c");
        let bn = b.batch_norm(c, "bn");
        let c2 = b.conv(c, 8, 3, 1, Padding::Same, "c2");
        let s = b.add(&[bn, c2], "sum");
        let net = b.finish(s).unwrap();
        let kernels = fuse_network(&net);
        // conv | bn | conv2+add — the Add fuses into conv2 (its latest
        // input with a single consumer).
        assert_eq!(kernels.len(), 3);
        let last = kernels.last().unwrap();
        assert_eq!(last.members.len(), 2);
    }

    #[test]
    fn residual_add_fuses_and_counts_shortcut_bytes() {
        let mut b = NetworkBuilder::new("f", Shape::map(8, 8, 8));
        let x = b.input();
        let c = b.conv(x, 8, 3, 1, Padding::Same, "c");
        let s = b.add(&[x, c], "sum");
        let r = b.activation(s, netcut_graph::Activation::Relu, "relu");
        let net = b.finish(r).unwrap();
        let kernels = fuse_network(&net);
        assert_eq!(kernels.len(), 1);
        let k = &kernels[0];
        assert_eq!(k.members.len(), 3);
        // Shortcut input (8×8×8 FP32 = 2048 bytes) must be part of reads.
        let conv_only_reads = net.layer_stats()[c.index()].bytes_read;
        assert_eq!(k.bytes_read, conv_only_reads + 8 * 8 * 8 * 4);
    }

    #[test]
    fn fusion_preserves_total_flops() {
        let net = netcut_graph::zoo::mobilenet_v2(1.0);
        let kernels = fuse_network(&net);
        let fused_flops: u64 = kernels.iter().map(|k| k.flops).sum();
        assert_eq!(fused_flops, net.stats().total_flops);
        // Far fewer kernels than compute nodes.
        assert!((kernels.len() as u64) < net.stats().compute_nodes / 2);
    }

    #[test]
    fn kernels_cover_all_compute_nodes_once() {
        let net = netcut_graph::zoo::resnet50();
        let kernels = fuse_network(&net);
        // BTreeSet keeps even test-side iteration order deterministic
        // (the detlint pass bans unordered collections in this crate's
        // runtime code; tests follow the same convention).
        let mut seen = std::collections::BTreeSet::new();
        for k in &kernels {
            for m in &k.members {
                assert!(seen.insert(*m), "node in two kernels");
            }
        }
        let compute: usize = net
            .nodes()
            .iter()
            .filter(|n| !matches!(n.kind(), LayerKind::Input))
            .count();
        assert_eq!(seen.len(), compute);
    }
}
