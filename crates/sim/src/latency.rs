//! Roofline latency evaluation of fused kernels.

use crate::device::{DeviceModel, Precision};
use crate::fusion::{fuse_network, FusedKernel};
use netcut_graph::Network;

/// Noise-free latency of one fused kernel in milliseconds.
///
/// `max(compute, memory) + launch overhead`, with compute throughput scaled
/// by kind efficiency, occupancy, and precision, and memory traffic scaled
/// by the precision's byte width.
pub fn kernel_latency_ms(kernel: &FusedKernel, device: &DeviceModel, precision: Precision) -> f64 {
    let eff = device.kind_efficiency(&kernel.primary_kind);
    let occ = device.occupancy(kernel.output_elements);
    let throughput_flops = device.peak_gflops * 1e9 * eff * occ * precision.compute_speedup(device);
    let compute_s = kernel.flops as f64 / throughput_flops.max(1.0);
    let bytes = (kernel.bytes_read + kernel.bytes_written) as f64 * precision.byte_scale();
    let memory_s = bytes / (device.mem_bandwidth_gbs * 1e9);
    compute_s.max(memory_s) * 1e3 + device.kernel_overhead_us * 1e-3
}

/// Noise-free end-to-end latency of `net` in milliseconds: the sum of its
/// fused kernels' latencies ("compute time starts right after the inputs
/// are transferred until they are ready to be transferred back", §IV-B-2 —
/// host transfers are excluded, as in the paper).
pub fn network_latency_ms(net: &Network, device: &DeviceModel, precision: Precision) -> f64 {
    let steady: f64 = fuse_network(net)
        .iter()
        .map(|k| kernel_latency_ms(k, device, precision))
        .sum();
    steady * device.ramp_factor(steady)
}

/// Noise-free latency of one *batched* inference of `net` in milliseconds.
///
/// Batching multiplies per-sample compute and activation traffic by
/// `batch`, amortizes weight streaming and kernel launches across the
/// batch, and improves occupancy (more parallel work per kernel) — the
/// standard latency/throughput trade-off. The real-time control loop runs
/// at batch 1; this model quantifies what that choice costs in throughput.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn batched_network_latency_ms(
    net: &Network,
    device: &DeviceModel,
    precision: Precision,
    batch: usize,
) -> f64 {
    assert!(batch > 0, "batch must be positive");
    let b = batch as f64;
    let steady: f64 = fuse_network(net)
        .iter()
        .map(|k| {
            let eff = device.kind_efficiency(&k.primary_kind);
            let occ = device.occupancy(k.output_elements * batch as u64);
            let throughput =
                device.peak_gflops * 1e9 * eff * occ * precision.compute_speedup(device);
            let compute_s = k.flops as f64 * b / throughput.max(1.0);
            let activation_bytes = (k.bytes_read - k.weight_bytes + k.bytes_written) as f64 * b;
            let bytes = (activation_bytes + k.weight_bytes as f64) * precision.byte_scale();
            let memory_s = bytes / (device.mem_bandwidth_gbs * 1e9);
            compute_s.max(memory_s) * 1e3 + device.kernel_overhead_us * 1e-3
        })
        .sum();
    steady * device.ramp_factor(steady)
}

/// Noise-free latency of one batched inference of `net` in **integer
/// microseconds** (rounded, at least 1). The integer form is what
/// deadline-aware schedulers consume: every downstream comparison stays in
/// exact integer arithmetic, so scheduling decisions are bit-identical
/// across platforms and worker counts.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn batched_network_latency_us(
    net: &Network,
    device: &DeviceModel,
    precision: Precision,
    batch: usize,
) -> u64 {
    (batched_network_latency_ms(net, device, precision, batch) * 1000.0)
        .round()
        .max(1.0) as u64
}

/// Batch-scaling factor in **parts per million**: the latency of a
/// `batch`-sized inference relative to batch 1 on the same device and
/// precision, rounded to integer ppm. `batch == 1` returns exactly
/// [`crate::PPM_SCALE`] (1 000 000).
///
/// This is the form a serving runtime stores per ladder rung: multiplying a
/// measured batch-1 latency (integer µs) by this factor reproduces the
/// analytic batching curve — weight-streaming and launch-overhead
/// amortization, occupancy growth — without any float entering the
/// scheduler's arithmetic.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn batch_scale_ppm(
    net: &Network,
    device: &DeviceModel,
    precision: Precision,
    batch: usize,
) -> u64 {
    if batch == 1 {
        return crate::PPM_SCALE;
    }
    let base = batched_network_latency_ms(net, device, precision, 1);
    let batched = batched_network_latency_ms(net, device, precision, batch);
    (batched / base * crate::PPM_SCALE as f64).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcut_graph::zoo;

    #[test]
    fn int8_is_faster_than_fp32() {
        let d = DeviceModel::jetson_xavier();
        let net = zoo::mobilenet_v2(1.0);
        let fp32 = network_latency_ms(&net, &d, Precision::Fp32);
        let int8 = network_latency_ms(&net, &d, Precision::Int8);
        assert!(int8 < fp32, "int8 {int8} !< fp32 {fp32}");
    }

    #[test]
    fn latency_decreases_with_blocks_removed() {
        let d = DeviceModel::jetson_xavier();
        let net = zoo::resnet50();
        let head = netcut_graph::HeadSpec::default();
        let mut prev = f64::INFINITY;
        for k in 0..net.num_blocks() {
            let trn = net.cut_blocks(k).unwrap().with_head(&head);
            let lat = network_latency_ms(&trn, &d, Precision::Int8);
            assert!(lat < prev, "cut {k}: {lat} !< {prev}");
            prev = lat;
        }
    }

    #[test]
    fn latency_roughly_linear_in_blocks_removed() {
        // §IV-B-2: "inference latency decreases almost linearly w.r.t. the
        // number of layers removed". Check monotone decrements of similar
        // magnitude within a homogeneous stage of MobileNetV1.
        let d = DeviceModel::jetson_xavier();
        let net = zoo::mobilenet_v1(0.5);
        let head = netcut_graph::HeadSpec::default();
        let lat: Vec<f64> = (2..=6)
            .map(|k| {
                let trn = net.cut_blocks(k).unwrap().with_head(&head);
                network_latency_ms(&trn, &d, Precision::Int8)
            })
            .collect();
        let deltas: Vec<f64> = lat.windows(2).map(|w| w[0] - w[1]).collect();
        for d in &deltas {
            assert!(*d > 0.0);
        }
        let max = deltas.iter().copied().fold(f64::MIN, f64::max);
        let min = deltas.iter().copied().fold(f64::MAX, f64::min);
        assert!(max / min < 4.0, "deltas too uneven: {deltas:?}");
    }

    #[test]
    fn batch_one_matches_single_sample_model() {
        let d = DeviceModel::jetson_xavier();
        let net = zoo::mobilenet_v1(0.5);
        let single = network_latency_ms(&net, &d, Precision::Int8);
        let batched = batched_network_latency_ms(&net, &d, Precision::Int8, 1);
        assert!((single - batched).abs() < 1e-12);
    }

    #[test]
    fn batching_improves_throughput_but_not_latency() {
        let d = DeviceModel::jetson_xavier();
        let net = zoo::resnet50();
        let mut prev_latency = 0.0;
        let mut prev_throughput = 0.0;
        for batch in [1usize, 2, 4, 8, 16] {
            let lat = batched_network_latency_ms(&net, &d, Precision::Int8, batch);
            let throughput = batch as f64 / lat;
            assert!(lat > prev_latency, "latency must grow with batch");
            assert!(
                throughput > prev_throughput,
                "throughput must grow with batch ({batch}: {throughput} vs {prev_throughput})"
            );
            prev_latency = lat;
            prev_throughput = throughput;
        }
    }

    #[test]
    fn integer_form_tracks_the_float_model() {
        let d = DeviceModel::jetson_xavier();
        let net = zoo::mobilenet_v2(1.0);
        for batch in [1usize, 2, 4, 8] {
            let ms = batched_network_latency_ms(&net, &d, Precision::Int8, batch);
            let us = batched_network_latency_us(&net, &d, Precision::Int8, batch);
            assert!((us as f64 - ms * 1000.0).abs() <= 0.5, "batch {batch}");
        }
    }

    #[test]
    fn batch_scale_is_ppm_exact_at_one_and_monotone() {
        let d = DeviceModel::jetson_xavier();
        let net = zoo::mobilenet_v2(1.0);
        assert_eq!(batch_scale_ppm(&net, &d, Precision::Int8, 1), 1_000_000);
        let mut prev = 0;
        for batch in 1..=16 {
            let scale = batch_scale_ppm(&net, &d, Precision::Int8, batch);
            assert!(scale > prev, "scale not monotone at batch {batch}");
            // Sublinear for batch >= 2: batching amortizes weights and
            // launches, so the scale grows slower than the batch size
            // itself. Batch 1 is exactly PPM by construction.
            assert!(
                batch == 1 || scale < 1_000_000 * batch as u64,
                "batch {batch} scale {scale} is not sublinear"
            );
            prev = scale;
        }
    }

    #[test]
    fn fusion_reduces_latency() {
        // Compare fused latency with a hypothetical unfused execution by
        // pricing each compute node as its own kernel.
        let d = DeviceModel::jetson_xavier();
        let net = zoo::mobilenet_v1(0.5);
        let fused = network_latency_ms(&net, &d, Precision::Int8);
        let unfused: f64 = net
            .nodes()
            .iter()
            .filter(|n| !matches!(n.kind(), netcut_graph::LayerKind::Input))
            .map(|n| {
                let ls = netcut_graph::layer_stats(&net, n.id());
                let k = FusedKernel {
                    primary: n.id(),
                    members: vec![n.id()],
                    flops: ls.flops,
                    bytes_read: ls.bytes_read,
                    weight_bytes: ls.params * 4,
                    bytes_written: ls.bytes_written,
                    output_elements: ls.output_elements,
                    primary_kind: *n.kind(),
                };
                kernel_latency_ms(&k, &d, Precision::Int8)
            })
            .sum();
        assert!(fused < unfused * 0.8, "fused {fused} vs unfused {unfused}");
    }
}
