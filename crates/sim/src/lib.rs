//! Embedded-GPU timing simulation for the NetCut reproduction.
//!
//! The paper evaluates on an NVIDIA Jetson Xavier, which this environment
//! does not have; this crate substitutes an analytical device model that
//! preserves the properties NetCut's estimators depend on:
//!
//! * per-layer latencies are **roughly additive** (inference latency falls
//!   almost linearly with layers removed, §IV-B-2);
//! * per-layer *profiling* is **over-additive** — recording each layer with
//!   CUDA-event-style instrumentation adds a per-layer overhead, so the sum
//!   of layer latencies slightly exceeds the end-to-end measurement (the
//!   observation that motivates the paper's ratio-form estimator, §V-B-1);
//! * **layer fusion** and **INT8 quantization** reduce latency (§III-B-4);
//! * narrow layers underutilize the device (occupancy), making latency a
//!   *non-linear* function of FLOPs — the non-linearity the RBF-kernel SVR
//!   adapts to and linear regression does not (§V-C).
//!
//! # Example
//!
//! ```
//! use netcut_graph::zoo;
//! use netcut_sim::{DeviceModel, Precision, Session};
//!
//! let device = DeviceModel::jetson_xavier();
//! let session = Session::new(device, Precision::Int8);
//! let m = session.measure(&zoo::mobilenet_v1(0.5), 42);
//! assert!(m.mean_ms > 0.05 && m.mean_ms < 5.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod energy;
mod fusion;
mod latency;
mod measure;
mod profile;
mod trace;

pub use device::{DeviceModel, Precision};
pub use energy::EnergyModel;
pub use fusion::{fuse_network, FusedKernel};
pub use latency::{
    batch_scale_ppm, batched_network_latency_ms, batched_network_latency_us, kernel_latency_ms,
    network_latency_ms,
};

/// One million — the fixed-point base for every parts-per-million quantity
/// this crate exports to integer-arithmetic consumers ([`batch_scale_ppm`],
/// [`DeviceModel::jitter_ppm`], [`DeviceModel::transient_slowdown_ppm`]).
pub const PPM_SCALE: u64 = 1_000_000;
pub use measure::{Measurement, Session};
pub use profile::{LatencyTable, LayerProfile};
pub use trace::{trace_network, Bound, Trace, TraceEntry};
