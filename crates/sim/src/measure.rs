//! Measurement harness replicating the paper's methodology (§IV-B-2):
//! warm the device with 200 inferences, then report the mean over another
//! 800 runs. Run-to-run noise is seeded and reproducible.

use crate::device::{DeviceModel, Precision};
use crate::fusion::fuse_network;
use crate::latency::{kernel_latency_ms, network_latency_ms};
use crate::profile::{LatencyTable, LayerProfile};
use netcut_graph::Network;
use netcut_obs as obs;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Short stable label for a precision, used in trace fields.
fn precision_label(precision: Precision) -> &'static str {
    match precision {
        Precision::Fp32 => "fp32",
        Precision::Fp16 => "fp16",
        Precision::Int8 => "int8",
    }
}

/// Number of warm-up inferences before timing starts.
pub const WARMUP_RUNS: usize = 200;
/// Number of timed inferences averaged into a [`Measurement`].
pub const TIMED_RUNS: usize = 800;

/// Result of timing a network on the device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Mean latency over the timed runs, milliseconds.
    pub mean_ms: f64,
    /// Sample standard deviation over the timed runs, milliseconds.
    pub std_ms: f64,
    /// 95th-percentile run latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile run latency, milliseconds — the figure a hard
    /// real-time budget should be checked against.
    pub p99_ms: f64,
    /// Worst observed run, milliseconds.
    pub max_ms: f64,
    /// Number of timed runs.
    pub runs: usize,
}

impl Measurement {
    /// Fraction of timed runs that exceeded `deadline_ms`, assuming the
    /// observed Gaussian-like jitter (computed from mean/std rather than
    /// stored samples).
    pub fn miss_rate(&self, deadline_ms: f64) -> f64 {
        if self.std_ms <= 0.0 {
            return if self.mean_ms > deadline_ms { 1.0 } else { 0.0 };
        }
        // Normal-tail approximation via the complementary error function
        // (Abramowitz–Stegun rational approximation).
        let z = (deadline_ms - self.mean_ms) / self.std_ms;
        0.5 * erfc_approx(z / std::f64::consts::SQRT_2)
    }
}

/// Rational approximation of `erfc(x)` accurate to ~1e-7.
fn erfc_approx(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.5 * ax);
    let tau = t
        * (-ax * ax - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

/// A device + precision pair on which networks are timed and profiled.
///
/// # Example
///
/// ```
/// use netcut_graph::zoo;
/// use netcut_sim::{DeviceModel, Precision, Session};
///
/// let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
/// let table = session.profile(&zoo::resnet50(), 7);
/// assert!(table.total_layer_time_ms() > table.end_to_end_ms());
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    device: DeviceModel,
    precision: Precision,
}

// Sessions are shared across evaluation worker threads by reference; they
// are plain data, so this holds structurally — assert it stays that way.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
};

impl Session {
    /// Creates a session for `device` at `precision`.
    pub fn new(device: DeviceModel, precision: Precision) -> Self {
        Session { device, precision }
    }

    /// A stable 64-bit hash of the measurement configuration: every
    /// [`DeviceModel`] constant plus the precision. Two sessions with the
    /// same fingerprint produce bit-identical measurements for the same
    /// network and seed, so the value is usable as a memo-cache key
    /// component alongside the network's structural fingerprint.
    pub fn fingerprint(&self) -> u64 {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        };
        let d = &self.device;
        mix(&(d.name.len() as u64).to_le_bytes());
        mix(d.name.as_bytes());
        for v in [
            d.peak_gflops,
            d.fp16_speedup,
            d.int8_speedup,
            d.mem_bandwidth_gbs,
            d.kernel_overhead_us,
            d.event_overhead_us,
            d.jitter_rel,
            d.occupancy_half_elems,
            d.ramp_penalty,
            d.ramp_halfpoint_ms,
        ] {
            mix(&v.to_bits().to_le_bytes());
        }
        mix(&[match self.precision {
            Precision::Fp32 => 0u8,
            Precision::Fp16 => 1,
            Precision::Int8 => 2,
        }]);
        h
    }

    /// The device model in use.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The deployment precision in use.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Noise-free analytic latency of `net` (no measurement jitter).
    pub fn ideal_latency_ms(&self, net: &Network) -> f64 {
        network_latency_ms(net, &self.device, self.precision)
    }

    /// Times `net` end to end: 200 warm-up runs followed by 800 timed runs
    /// whose mean and standard deviation are returned. The RNG is seeded
    /// from `seed` and the network name, so measurements are reproducible.
    pub fn measure(&self, net: &Network, seed: u64) -> Measurement {
        let mut span = obs::span("sim.measure");
        if span.is_recording() {
            span.field("network", net.name());
            span.field("device", self.device.name.as_str());
            span.field("precision", precision_label(self.precision));
            span.field("seed", seed);
        }
        let base = self.ideal_latency_ms(net);
        let mut rng = self.rng(net, seed);
        // Warm-up: the first runs are slower (cold caches, clock ramp);
        // they are simulated and discarded exactly as the paper does.
        {
            let mut warmup = obs::span("sim.measure.warmup");
            warmup.field("runs", WARMUP_RUNS);
            let mut warm_penalty = 0.35;
            for _ in 0..WARMUP_RUNS {
                let _cold = base * (1.0 + warm_penalty + self.noise(&mut rng));
                warm_penalty *= 0.97;
            }
        }
        let mut timed = obs::span("sim.measure.timed");
        timed.field("runs", TIMED_RUNS);
        let mut samples = Vec::with_capacity(TIMED_RUNS);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..TIMED_RUNS {
            let run = base * (1.0 + self.noise(&mut rng));
            sum += run;
            sum_sq += run * run;
            samples.push(run);
        }
        drop(timed);
        let n = TIMED_RUNS as f64;
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0) * n / (n - 1.0);
        samples.sort_by(f64::total_cmp);
        let pct = |q: f64| samples[((TIMED_RUNS - 1) as f64 * q).round() as usize];
        let measurement = Measurement {
            mean_ms: mean,
            std_ms: var.sqrt(),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: samples[TIMED_RUNS - 1],
            runs: TIMED_RUNS,
        };
        obs::counter_add("sim.measurements", 1);
        obs::observe("sim.measure.mean_ms", measurement.mean_ms);
        span.field("mean_ms", measurement.mean_ms);
        span.field("std_ms", measurement.std_ms);
        span.field("p99_ms", measurement.p99_ms);
        measurement
    }

    /// Profiles `net` per fused kernel with CUDA-event-style
    /// instrumentation: each recorded kernel pays
    /// [`DeviceModel::event_overhead_us`] extra, so the per-layer sum
    /// exceeds the end-to-end measurement — the over-additivity the paper's
    /// ratio estimator corrects for.
    pub fn profile(&self, net: &Network, seed: u64) -> LatencyTable {
        let mut span = obs::span("sim.profile");
        if span.is_recording() {
            span.field("network", net.name());
            span.field("device", self.device.name.as_str());
            span.field("precision", precision_label(self.precision));
        }
        let kernels = fuse_network(net);
        span.field("kernels", kernels.len());
        let mut rng = self.rng(net, seed ^ 0x9e3779b97f4a7c15);
        let event_ms = self.device.event_overhead_us * 1e-3;
        // Per-layer records are taken during full-network runs, so every
        // layer executes under the same (ramped) clocks as the end-to-end
        // measurement.
        let steady: f64 = kernels
            .iter()
            .map(|k| kernel_latency_ms(k, &self.device, self.precision))
            .sum();
        let ramp = self.device.ramp_factor(steady);
        let layers = kernels
            .iter()
            .map(|k| {
                let base = kernel_latency_ms(k, &self.device, self.precision) * ramp;
                let noisy = base * (1.0 + self.noise(&mut rng)) + event_ms;
                if obs::enabled() {
                    obs::instant(
                        "sim.profile.layer",
                        &[
                            ("layer", net.node(k.primary).name().into()),
                            ("latency_ms", noisy.into()),
                        ],
                    );
                }
                LayerProfile {
                    tail: k.tail(),
                    name: net.node(k.primary).name().to_owned(),
                    members: k.members.clone(),
                    latency_ms: noisy,
                }
            })
            .collect();
        let end_to_end = self.measure(net, seed).mean_ms;
        obs::counter_add("sim.profiles", 1);
        span.field("end_to_end_ms", end_to_end);
        LatencyTable::new(net.name().to_owned(), layers, end_to_end)
    }

    fn rng(&self, net: &Network, seed: u64) -> SmallRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in net.name().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        SmallRng::seed_from_u64(h ^ seed)
    }

    fn noise(&self, rng: &mut SmallRng) -> f64 {
        // Sum of uniforms ≈ Gaussian; cheap, deterministic, bounded.
        let u: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 4.0 - 0.5;
        u * 2.0 * 1.732 * self.device.jitter_rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcut_graph::zoo;

    fn session() -> Session {
        Session::new(DeviceModel::jetson_xavier(), Precision::Int8)
    }

    #[test]
    fn session_fingerprint_separates_configurations() {
        let a = session();
        assert_eq!(a.fingerprint(), session().fingerprint());
        let fp16 = Session::new(DeviceModel::jetson_xavier(), Precision::Fp16);
        assert_ne!(a.fingerprint(), fp16.fingerprint());
        let nano = Session::new(DeviceModel::jetson_nano(), Precision::Int8);
        assert_ne!(a.fingerprint(), nano.fingerprint());
    }

    #[test]
    fn measurement_is_reproducible() {
        let net = zoo::mobilenet_v1(0.5);
        let a = session().measure(&net, 1);
        let b = session().measure(&net, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_jitter_slightly() {
        let net = zoo::mobilenet_v1(0.5);
        let a = session().measure(&net, 1);
        let b = session().measure(&net, 2);
        assert_ne!(a.mean_ms, b.mean_ms);
        assert!((a.mean_ms - b.mean_ms).abs() / a.mean_ms < 0.02);
    }

    #[test]
    fn mean_tracks_ideal_latency() {
        let net = zoo::mobilenet_v2(1.0);
        let s = session();
        let m = s.measure(&net, 3);
        let ideal = s.ideal_latency_ms(&net);
        assert!((m.mean_ms - ideal).abs() / ideal < 0.01);
        assert!(m.std_ms > 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let net = zoo::resnet50();
        let m = session().measure(&net, 21);
        assert!(m.mean_ms <= m.p95_ms);
        assert!(m.p95_ms <= m.p99_ms);
        assert!(m.p99_ms <= m.max_ms);
        // With 2 % jitter the p99 sits roughly 2.3 sigma above the mean.
        let sigmas = (m.p99_ms - m.mean_ms) / m.std_ms;
        assert!((1.8..=3.2).contains(&sigmas), "p99 at {sigmas} sigma");
    }

    #[test]
    fn miss_rate_tracks_the_tail() {
        let net = zoo::mobilenet_v2(1.0);
        let m = session().measure(&net, 22);
        assert!(m.miss_rate(m.mean_ms * 2.0) < 1e-6);
        assert!(m.miss_rate(m.mean_ms * 0.5) > 0.999);
        let at_mean = m.miss_rate(m.mean_ms);
        assert!((0.4..=0.6).contains(&at_mean), "miss at mean = {at_mean}");
        // Around p99 the miss rate is ≈ 1 %.
        let at_p99 = m.miss_rate(m.p99_ms);
        assert!((0.001..=0.05).contains(&at_p99), "miss at p99 = {at_p99}");
    }

    #[test]
    fn miss_rate_with_zero_std_is_a_step() {
        let mut m = Measurement {
            mean_ms: 1.0,
            std_ms: 0.0,
            p95_ms: 1.0,
            p99_ms: 1.0,
            max_ms: 1.0,
            runs: 800,
        };
        // Deterministic latency: miss iff the mean exceeds the deadline.
        assert_eq!(m.miss_rate(2.0), 0.0);
        assert_eq!(m.miss_rate(0.5), 1.0);
        // Exactly on the deadline counts as a hit (<=, not <).
        assert_eq!(m.miss_rate(1.0), 0.0);
        // Negative std (corrupt input) degrades to the same step function.
        m.std_ms = -0.1;
        assert_eq!(m.miss_rate(2.0), 0.0);
        assert_eq!(m.miss_rate(0.5), 1.0);
    }

    #[test]
    fn miss_rate_saturates_at_extreme_z() {
        let m = Measurement {
            mean_ms: 1.0,
            std_ms: 1e-9,
            p95_ms: 1.0,
            p99_ms: 1.0,
            max_ms: 1.0,
            runs: 800,
        };
        // z -> +inf / -inf must saturate cleanly, not overflow to NaN.
        let far_above = m.miss_rate(1e9);
        let far_below = m.miss_rate(-1e9);
        assert!(far_above.is_finite() && far_above >= 0.0);
        assert!(far_below.is_finite() && far_below <= 1.0);
        assert!(far_above < 1e-12, "miss far above deadline = {far_above}");
        assert!(far_below > 1.0 - 1e-12, "miss far below = {far_below}");
    }

    #[test]
    fn miss_rate_at_mean_is_one_half() {
        let m = Measurement {
            mean_ms: 3.0,
            std_ms: 0.2,
            p95_ms: 3.3,
            p99_ms: 3.5,
            max_ms: 3.6,
            runs: 800,
        };
        // Deadline at the mean of a symmetric distribution: 50 % misses.
        assert!((m.miss_rate(3.0) - 0.5).abs() < 1e-6);
        // Symmetry: P(miss at mean - d) + P(miss at mean + d) = 1.
        for d in [0.01, 0.1, 0.5, 1.0] {
            let total = m.miss_rate(3.0 - d) + m.miss_rate(3.0 + d);
            assert!((total - 1.0).abs() < 1e-6, "asymmetric at d={d}: {total}");
        }
    }

    #[test]
    fn miss_rate_is_monotone_in_the_deadline() {
        let m = Measurement {
            mean_ms: 1.0,
            std_ms: 0.05,
            p95_ms: 1.08,
            p99_ms: 1.12,
            max_ms: 1.2,
            runs: 800,
        };
        let mut prev = 1.0;
        let mut deadline = 0.5;
        while deadline <= 1.5 {
            let rate = m.miss_rate(deadline);
            assert!((0.0..=1.0).contains(&rate), "rate out of range: {rate}");
            assert!(rate <= prev + 1e-9, "not monotone at {deadline}");
            prev = rate;
            deadline += 0.01;
        }
    }

    #[test]
    fn erfc_matches_known_values() {
        // Reference values for the Abramowitz–Stegun approximation
        // (accurate to ~1.2e-7): erfc(0) = 1, erfc(±1), erfc(2).
        assert!((erfc_approx(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc_approx(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc_approx(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!((erfc_approx(2.0) - 0.004_677_735).abs() < 1e-6);
        // One-sigma deadline headroom corresponds to ~15.87 % miss rate.
        let m = Measurement {
            mean_ms: 1.0,
            std_ms: 0.1,
            p95_ms: 1.16,
            p99_ms: 1.23,
            max_ms: 1.3,
            runs: 800,
        };
        assert!((m.miss_rate(1.1) - 0.158_655_3).abs() < 1e-4);
    }

    #[test]
    fn profile_is_over_additive() {
        let net = zoo::resnet50();
        let table = session().profile(&net, 11);
        assert!(
            table.total_layer_time_ms() > table.end_to_end_ms(),
            "event overhead must inflate the per-layer sum"
        );
        // ...but not wildly: within ~25 %.
        assert!(table.total_layer_time_ms() < table.end_to_end_ms() * 1.25);
    }
}
