//! Measurement harness replicating the paper's methodology (§IV-B-2):
//! warm the device with 200 inferences, then report the mean over another
//! 800 runs. Run-to-run noise is seeded and reproducible.

use crate::device::{DeviceModel, Precision};
use crate::fusion::fuse_network;
use crate::latency::{kernel_latency_ms, network_latency_ms};
use crate::profile::{LatencyTable, LayerProfile};
use netcut_graph::Network;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of warm-up inferences before timing starts.
pub const WARMUP_RUNS: usize = 200;
/// Number of timed inferences averaged into a [`Measurement`].
pub const TIMED_RUNS: usize = 800;

/// Result of timing a network on the device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Mean latency over the timed runs, milliseconds.
    pub mean_ms: f64,
    /// Sample standard deviation over the timed runs, milliseconds.
    pub std_ms: f64,
    /// 95th-percentile run latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile run latency, milliseconds — the figure a hard
    /// real-time budget should be checked against.
    pub p99_ms: f64,
    /// Worst observed run, milliseconds.
    pub max_ms: f64,
    /// Number of timed runs.
    pub runs: usize,
}

impl Measurement {
    /// Fraction of timed runs that exceeded `deadline_ms`, assuming the
    /// observed Gaussian-like jitter (computed from mean/std rather than
    /// stored samples).
    pub fn miss_rate(&self, deadline_ms: f64) -> f64 {
        if self.std_ms <= 0.0 {
            return if self.mean_ms > deadline_ms { 1.0 } else { 0.0 };
        }
        // Normal-tail approximation via the complementary error function
        // (Abramowitz–Stegun rational approximation).
        let z = (deadline_ms - self.mean_ms) / self.std_ms;
        0.5 * erfc_approx(z / std::f64::consts::SQRT_2)
    }
}

/// Rational approximation of `erfc(x)` accurate to ~1e-7.
fn erfc_approx(x: f64) -> f64 {
    let ax = x.abs();
    let t = 1.0 / (1.0 + 0.5 * ax);
    let tau = t
        * (-ax * ax - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
        .exp();
    if x >= 0.0 {
        tau
    } else {
        2.0 - tau
    }
}

/// A device + precision pair on which networks are timed and profiled.
///
/// # Example
///
/// ```
/// use netcut_graph::zoo;
/// use netcut_sim::{DeviceModel, Precision, Session};
///
/// let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
/// let table = session.profile(&zoo::resnet50(), 7);
/// assert!(table.total_layer_time_ms() > table.end_to_end_ms());
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    device: DeviceModel,
    precision: Precision,
}

impl Session {
    /// Creates a session for `device` at `precision`.
    pub fn new(device: DeviceModel, precision: Precision) -> Self {
        Session { device, precision }
    }

    /// The device model in use.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The deployment precision in use.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Noise-free analytic latency of `net` (no measurement jitter).
    pub fn ideal_latency_ms(&self, net: &Network) -> f64 {
        network_latency_ms(net, &self.device, self.precision)
    }

    /// Times `net` end to end: 200 warm-up runs followed by 800 timed runs
    /// whose mean and standard deviation are returned. The RNG is seeded
    /// from `seed` and the network name, so measurements are reproducible.
    pub fn measure(&self, net: &Network, seed: u64) -> Measurement {
        let base = self.ideal_latency_ms(net);
        let mut rng = self.rng(net, seed);
        // Warm-up: the first runs are slower (cold caches, clock ramp);
        // they are simulated and discarded exactly as the paper does.
        let mut warm_penalty = 0.35;
        for _ in 0..WARMUP_RUNS {
            let _cold = base * (1.0 + warm_penalty + self.noise(&mut rng));
            warm_penalty *= 0.97;
        }
        let mut samples = Vec::with_capacity(TIMED_RUNS);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..TIMED_RUNS {
            let run = base * (1.0 + self.noise(&mut rng));
            sum += run;
            sum_sq += run * run;
            samples.push(run);
        }
        let n = TIMED_RUNS as f64;
        let mean = sum / n;
        let var = (sum_sq / n - mean * mean).max(0.0) * n / (n - 1.0);
        samples.sort_by(f64::total_cmp);
        let pct = |q: f64| samples[((TIMED_RUNS - 1) as f64 * q).round() as usize];
        Measurement {
            mean_ms: mean,
            std_ms: var.sqrt(),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: samples[TIMED_RUNS - 1],
            runs: TIMED_RUNS,
        }
    }

    /// Profiles `net` per fused kernel with CUDA-event-style
    /// instrumentation: each recorded kernel pays
    /// [`DeviceModel::event_overhead_us`] extra, so the per-layer sum
    /// exceeds the end-to-end measurement — the over-additivity the paper's
    /// ratio estimator corrects for.
    pub fn profile(&self, net: &Network, seed: u64) -> LatencyTable {
        let kernels = fuse_network(net);
        let mut rng = self.rng(net, seed ^ 0x9e3779b97f4a7c15);
        let event_ms = self.device.event_overhead_us * 1e-3;
        // Per-layer records are taken during full-network runs, so every
        // layer executes under the same (ramped) clocks as the end-to-end
        // measurement.
        let steady: f64 = kernels
            .iter()
            .map(|k| kernel_latency_ms(k, &self.device, self.precision))
            .sum();
        let ramp = self.device.ramp_factor(steady);
        let layers = kernels
            .iter()
            .map(|k| {
                let base = kernel_latency_ms(k, &self.device, self.precision) * ramp;
                let noisy = base * (1.0 + self.noise(&mut rng)) + event_ms;
                LayerProfile {
                    tail: k.tail(),
                    name: net.node(k.primary).name().to_owned(),
                    members: k.members.clone(),
                    latency_ms: noisy,
                }
            })
            .collect();
        let end_to_end = self.measure(net, seed).mean_ms;
        LatencyTable::new(net.name().to_owned(), layers, end_to_end)
    }

    fn rng(&self, net: &Network, seed: u64) -> SmallRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in net.name().bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        SmallRng::seed_from_u64(h ^ seed)
    }

    fn noise(&self, rng: &mut SmallRng) -> f64 {
        // Sum of uniforms ≈ Gaussian; cheap, deterministic, bounded.
        let u: f64 = (0..4).map(|_| rng.gen::<f64>()).sum::<f64>() / 4.0 - 0.5;
        u * 2.0 * 1.732 * self.device.jitter_rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcut_graph::zoo;

    fn session() -> Session {
        Session::new(DeviceModel::jetson_xavier(), Precision::Int8)
    }

    #[test]
    fn measurement_is_reproducible() {
        let net = zoo::mobilenet_v1(0.5);
        let a = session().measure(&net, 1);
        let b = session().measure(&net, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_jitter_slightly() {
        let net = zoo::mobilenet_v1(0.5);
        let a = session().measure(&net, 1);
        let b = session().measure(&net, 2);
        assert_ne!(a.mean_ms, b.mean_ms);
        assert!((a.mean_ms - b.mean_ms).abs() / a.mean_ms < 0.02);
    }

    #[test]
    fn mean_tracks_ideal_latency() {
        let net = zoo::mobilenet_v2(1.0);
        let s = session();
        let m = s.measure(&net, 3);
        let ideal = s.ideal_latency_ms(&net);
        assert!((m.mean_ms - ideal).abs() / ideal < 0.01);
        assert!(m.std_ms > 0.0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let net = zoo::resnet50();
        let m = session().measure(&net, 21);
        assert!(m.mean_ms <= m.p95_ms);
        assert!(m.p95_ms <= m.p99_ms);
        assert!(m.p99_ms <= m.max_ms);
        // With 2 % jitter the p99 sits roughly 2.3 sigma above the mean.
        let sigmas = (m.p99_ms - m.mean_ms) / m.std_ms;
        assert!((1.8..=3.2).contains(&sigmas), "p99 at {sigmas} sigma");
    }

    #[test]
    fn miss_rate_tracks_the_tail() {
        let net = zoo::mobilenet_v2(1.0);
        let m = session().measure(&net, 22);
        assert!(m.miss_rate(m.mean_ms * 2.0) < 1e-6);
        assert!(m.miss_rate(m.mean_ms * 0.5) > 0.999);
        let at_mean = m.miss_rate(m.mean_ms);
        assert!((0.4..=0.6).contains(&at_mean), "miss at mean = {at_mean}");
        // Around p99 the miss rate is ≈ 1 %.
        let at_p99 = m.miss_rate(m.p99_ms);
        assert!((0.001..=0.05).contains(&at_p99), "miss at p99 = {at_p99}");
    }

    #[test]
    fn profile_is_over_additive() {
        let net = zoo::resnet50();
        let table = session().profile(&net, 11);
        assert!(
            table.total_layer_time_ms() > table.end_to_end_ms(),
            "event overhead must inflate the per-layer sum"
        );
        // ...but not wildly: within ~25 %.
        assert!(table.total_layer_time_ms() < table.end_to_end_ms() * 1.25);
    }
}
