//! Per-layer latency tables — the artifact the profiler-based estimator
//! consumes (§V-B-1). One table exists per unmodified source network.

use netcut_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Recorded latency of one profiled (fused) layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerProfile {
    /// Node producing the layer's output.
    pub tail: NodeId,
    /// Name of the layer's primary node.
    pub name: String,
    /// All graph nodes executed inside this layer.
    pub members: Vec<NodeId>,
    /// Recorded latency, milliseconds (includes the per-layer event
    /// overhead).
    pub latency_ms: f64,
}

/// A per-layer latency table for one source network, together with its
/// end-to-end measurement.
///
/// # Example
///
/// ```
/// use netcut_graph::zoo;
/// use netcut_sim::{DeviceModel, Precision, Session};
///
/// let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
/// let table = session.profile(&zoo::mobilenet_v1(0.25), 1);
/// assert_eq!(table.network(), "mobilenet_v1_0.25");
/// assert!(!table.layers().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyTable {
    network: String,
    layers: Vec<LayerProfile>,
    end_to_end_ms: f64,
}

impl LatencyTable {
    /// Builds a table from recorded layers and an end-to-end measurement.
    pub fn new(network: String, layers: Vec<LayerProfile>, end_to_end_ms: f64) -> Self {
        LatencyTable {
            network,
            layers,
            end_to_end_ms,
        }
    }

    /// Name of the profiled network.
    pub fn network(&self) -> &str {
        &self.network
    }

    /// The recorded layers in execution order.
    pub fn layers(&self) -> &[LayerProfile] {
        &self.layers
    }

    /// End-to-end mean latency of the profiled network, milliseconds.
    pub fn end_to_end_ms(&self) -> f64 {
        self.end_to_end_ms
    }

    /// Sum of all recorded per-layer latencies — slightly *more* than
    /// [`end_to_end_ms`](Self::end_to_end_ms) because each record carries
    /// event overhead.
    pub fn total_layer_time_ms(&self) -> f64 {
        self.layers.iter().map(|l| l.latency_ms).sum()
    }

    /// Sum of recorded latencies over layers whose **every member node** is
    /// contained in `removed` — the `Σ Latency(Layer_i)` term of the
    /// paper's ratio formula for a cut that removes those nodes.
    pub fn removed_time_ms(&self, removed: &dyn Fn(NodeId) -> bool) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.members.iter().all(|&m| removed(m)))
            .map(|l| l.latency_ms)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> LatencyTable {
        let layers = (0..4)
            .map(|i| LayerProfile {
                tail: NodeId::new(i),
                name: format!("l{i}"),
                members: vec![NodeId::new(i)],
                latency_ms: (i + 1) as f64,
            })
            .collect();
        LatencyTable::new("t".to_owned(), layers, 9.5)
    }

    #[test]
    fn totals() {
        let t = table();
        assert_eq!(t.total_layer_time_ms(), 10.0);
        assert_eq!(t.end_to_end_ms(), 9.5);
    }

    #[test]
    fn removed_time_filters_by_membership() {
        let t = table();
        let removed = |id: NodeId| id.index() >= 2;
        assert_eq!(t.removed_time_ms(&removed), 3.0 + 4.0);
    }
}
