//! Per-kernel execution traces: a deployment-debugging view of where a
//! network's time goes (compute- vs memory-bound, launch overhead,
//! fusion grouping).

use crate::device::Precision;
use crate::fusion::fuse_network;
use crate::measure::Session;
use netcut_graph::Network;
use serde::{Deserialize, Serialize};

/// Why a kernel's duration is what it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Arithmetic throughput limits the kernel.
    Compute,
    /// Memory bandwidth limits the kernel.
    Memory,
}

/// One kernel's row in a [`Trace`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Primary node name.
    pub name: String,
    /// Number of fused graph nodes.
    pub fused_nodes: usize,
    /// Kernel duration, milliseconds (steady-state, before ramp).
    pub duration_ms: f64,
    /// FLOPs executed.
    pub flops: u64,
    /// Bytes moved at the deployed precision.
    pub bytes: u64,
    /// Limiting resource.
    pub bound: Bound,
    /// Fraction of device occupancy achieved.
    pub occupancy: f64,
}

/// A full per-kernel execution trace of one network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Network name.
    pub network: String,
    /// Kernel rows in execution order.
    pub kernels: Vec<TraceEntry>,
    /// Steady-state total (sum of kernels), milliseconds.
    pub steady_ms: f64,
    /// End-to-end latency including the clock-ramp factor, milliseconds.
    pub total_ms: f64,
}

impl Trace {
    /// Kernel rows sorted by descending duration (the hot spots).
    pub fn hotspots(&self) -> Vec<&TraceEntry> {
        let mut rows: Vec<&TraceEntry> = self.kernels.iter().collect();
        rows.sort_by(|a, b| b.duration_ms.total_cmp(&a.duration_ms));
        rows
    }

    /// Fraction of steady-state time spent in memory-bound kernels.
    pub fn memory_bound_fraction(&self) -> f64 {
        if self.steady_ms == 0.0 {
            return 0.0;
        }
        self.kernels
            .iter()
            .filter(|k| k.bound == Bound::Memory)
            .map(|k| k.duration_ms)
            .sum::<f64>()
            / self.steady_ms
    }
}

impl Session {
    /// Produces the noise-free per-kernel trace of `net` on this session's
    /// device and precision.
    pub fn trace(&self, net: &Network) -> Trace {
        let device = self.device();
        let precision = self.precision();
        let kernels = fuse_network(net);
        let mut rows = Vec::with_capacity(kernels.len());
        let mut steady = 0.0;
        for k in &kernels {
            let eff = device.kind_efficiency(&k.primary_kind);
            let occ = device.occupancy(k.output_elements);
            let throughput =
                device.peak_gflops * 1e9 * eff * occ * precision.compute_speedup(device);
            let compute_s = k.flops as f64 / throughput.max(1.0);
            let bytes = ((k.bytes_read + k.bytes_written) as f64 * precision.byte_scale()) as u64;
            let memory_s = bytes as f64 / (device.mem_bandwidth_gbs * 1e9);
            let duration_ms = compute_s.max(memory_s) * 1e3 + device.kernel_overhead_us * 1e-3;
            steady += duration_ms;
            rows.push(TraceEntry {
                name: net.node(k.primary).name().to_owned(),
                fused_nodes: k.members.len(),
                duration_ms,
                flops: k.flops,
                bytes,
                bound: if compute_s >= memory_s {
                    Bound::Compute
                } else {
                    Bound::Memory
                },
                occupancy: occ,
            });
        }
        Trace {
            network: net.name().to_owned(),
            kernels: rows,
            steady_ms: steady,
            total_ms: steady * device.ramp_factor(steady),
        }
    }
}

/// Convenience: trace at a given precision on the Xavier preset.
pub fn trace_network(net: &Network, precision: Precision) -> Trace {
    Session::new(crate::device::DeviceModel::jetson_xavier(), precision).trace(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use netcut_graph::zoo;

    fn session() -> Session {
        Session::new(DeviceModel::jetson_xavier(), Precision::Int8)
    }

    #[test]
    fn trace_sums_match_latency_model() {
        let net = zoo::mobilenet_v2(1.0);
        let s = session();
        let trace = s.trace(&net);
        let ideal = s.ideal_latency_ms(&net);
        assert!((trace.total_ms - ideal).abs() < 1e-9);
        let sum: f64 = trace.kernels.iter().map(|k| k.duration_ms).sum();
        assert!((sum - trace.steady_ms).abs() < 1e-9);
    }

    #[test]
    fn hotspots_are_sorted_descending() {
        let trace = session().trace(&zoo::resnet50());
        let hs = trace.hotspots();
        for w in hs.windows(2) {
            assert!(w[0].duration_ms >= w[1].duration_ms);
        }
        // The biggest kernel in ResNet-50 is a convolution.
        assert!(hs[0].name.contains("conv") || hs[0].name.contains("stem"));
    }

    #[test]
    fn every_kernel_is_classified() {
        let trace = session().trace(&zoo::inception_v3());
        assert!(!trace.kernels.is_empty());
        let frac = trace.memory_bound_fraction();
        assert!((0.0..=1.0).contains(&frac));
        for k in &trace.kernels {
            assert!(k.duration_ms > 0.0);
            assert!(k.occupancy > 0.0 && k.occupancy <= 1.0);
        }
    }

    #[test]
    fn trace_serializes() {
        let trace = session().trace(&zoo::mobilenet_v1(0.25));
        let json = serde_json::to_string(&trace).expect("serializable");
        assert!(!json.contains("jetson")); // device not embedded
        assert!(json.contains("mobilenet_v1_0.25"));
    }
}
