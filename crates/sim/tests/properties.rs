//! Property-based tests of the device simulator: fusion and latency
//! invariants over randomly generated networks.

use netcut_graph::{Activation, HeadSpec, Network, NetworkBuilder, Padding, Shape};
use netcut_sim::{fuse_network, network_latency_ms, DeviceModel, Precision, Session};
use proptest::prelude::*;

/// Random sequential network: a list of (channels, kernel, stride,
/// with_bn, with_relu) conv stages.
fn build(stages: &[(usize, usize, usize, bool, bool)]) -> Network {
    let mut b = NetworkBuilder::new("sim-random", Shape::map(3, 48, 48));
    let mut x = b.input();
    for (i, &(c, k, s, bn, relu)) in stages.iter().enumerate() {
        b.begin_block(format!("s{i}"));
        x = b.conv(x, c, k, s, Padding::Same, &format!("s{i}/conv"));
        if bn {
            x = b.batch_norm(x, &format!("s{i}/bn"));
        }
        if relu {
            x = b.activation(x, Activation::Relu, &format!("s{i}/relu"));
        }
        b.end_block(x).expect("non-empty block");
    }
    b.finish(x).expect("valid network")
}

fn stage_strategy() -> impl Strategy<Value = (usize, usize, usize, bool, bool)> {
    (
        1usize..=6,
        0usize..2,
        1usize..=2,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(c, k, s, bn, relu)| (8 * c, [1, 3][k], s, bn, relu))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fusion_preserves_flops_and_covers_nodes(
        stages in prop::collection::vec(stage_strategy(), 1..10)
    ) {
        let net = build(&stages);
        let kernels = fuse_network(&net);
        let fused_flops: u64 = kernels.iter().map(|k| k.flops).sum();
        prop_assert_eq!(fused_flops, net.stats().total_flops);
        let member_count: usize = kernels.iter().map(|k| k.members.len()).sum();
        let compute_nodes = net.len() - 1; // every node except Input
        prop_assert_eq!(member_count, compute_nodes);
        // No node appears twice.
        let mut seen = std::collections::HashSet::new();
        for k in &kernels {
            for m in &k.members {
                prop_assert!(seen.insert(*m));
            }
        }
    }

    #[test]
    fn latency_is_positive_and_finite(
        stages in prop::collection::vec(stage_strategy(), 1..10)
    ) {
        let net = build(&stages);
        for precision in [Precision::Fp32, Precision::Fp16, Precision::Int8] {
            let lat = network_latency_ms(&net, &DeviceModel::jetson_xavier(), precision);
            prop_assert!(lat.is_finite() && lat > 0.0);
        }
    }

    #[test]
    fn lower_precision_is_never_slower(
        stages in prop::collection::vec(stage_strategy(), 1..10)
    ) {
        let net = build(&stages);
        let d = DeviceModel::jetson_xavier();
        let fp32 = network_latency_ms(&net, &d, Precision::Fp32);
        let fp16 = network_latency_ms(&net, &d, Precision::Fp16);
        let int8 = network_latency_ms(&net, &d, Precision::Int8);
        prop_assert!(int8 <= fp16 + 1e-12);
        prop_assert!(fp16 <= fp32 + 1e-12);
    }

    #[test]
    fn cutting_never_increases_latency(
        stages in prop::collection::vec(stage_strategy(), 2..10)
    ) {
        let net = build(&stages);
        let head = HeadSpec::default();
        let d = DeviceModel::jetson_xavier();
        let mut prev = f64::INFINITY;
        for k in 0..net.num_blocks() {
            let trn = net.cut_blocks(k).expect("valid cutpoint").with_head(&head);
            let lat = network_latency_ms(&trn, &d, Precision::Int8);
            prop_assert!(lat <= prev + 1e-12, "cut {} raised latency", k);
            prev = lat;
        }
    }

    #[test]
    fn measurement_mean_is_near_ideal(
        stages in prop::collection::vec(stage_strategy(), 1..6),
        seed in 0u64..1000,
    ) {
        let net = build(&stages);
        let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
        let ideal = session.ideal_latency_ms(&net);
        let measured = session.measure(&net, seed).mean_ms;
        prop_assert!(((measured - ideal) / ideal).abs() < 0.02);
    }

    #[test]
    fn profiling_is_over_additive_for_any_network(
        stages in prop::collection::vec(stage_strategy(), 2..8),
        seed in 0u64..100,
    ) {
        let net = build(&stages);
        let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
        let table = session.profile(&net, seed);
        prop_assert!(table.total_layer_time_ms() > table.end_to_end_ms() * 0.98);
    }
}
