//! Seeded weight initializers.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Uniform initialization in `[-limit, limit]`.
pub fn uniform(shape: &[usize], limit: f32, seed: u64) -> Tensor {
    let mut rng = SmallRng::seed_from_u64(seed);
    let data = (0..shape.iter().product::<usize>())
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Tensor::from_vec(data, shape)
}

/// Xavier/Glorot uniform initialization for a layer with the given fan-in
/// and fan-out.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, limit, seed)
}

/// He (Kaiming) normal-ish initialization (uniform with matched variance)
/// for ReLU networks with the given fan-in.
pub fn he_normal(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
    // Uniform on [-a, a] has variance a²/3; match 2/fan_in.
    let limit = (6.0 / fan_in as f32).sqrt();
    uniform(shape, limit, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = he_normal(&[4, 4], 4, 7);
        let b = he_normal(&[4, 4], 4, 7);
        let c = he_normal(&[4, 4], 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_limit_shrinks_with_fan() {
        let small = xavier_uniform(&[1000], 10, 10, 1);
        let large = xavier_uniform(&[1000], 1000, 1000, 1);
        let max_small = small
            .data()
            .iter()
            .copied()
            .fold(0.0f32, |a, b| a.max(b.abs()));
        let max_large = large
            .data()
            .iter()
            .copied()
            .fold(0.0f32, |a, b| a.max(b.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn variance_matches_he() {
        let t = he_normal(&[10_000], 100, 3);
        let mean: f32 = t.sum() / t.len() as f32;
        let var: f32 = t
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / t.len() as f32;
        // Target variance 2 / fan_in = 0.02.
        assert!((var - 0.02).abs() < 0.004, "var = {var}");
    }
}
