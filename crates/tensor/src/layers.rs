//! Neural-network layers with hand-derived backward passes.
//!
//! Every layer caches whatever it needs during `forward` and consumes the
//! cache in `backward`; parameter gradients accumulate into [`Param::grad`]
//! until the optimizer steps and clears them.

use crate::init::he_normal;
use crate::tensor::Tensor;

/// A trainable parameter: value, accumulated gradient, and a freeze flag
/// (frozen parameters are skipped by optimizers — this is how the transfer
/// recipe's "features frozen" phase is expressed).
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// When `true`, optimizers skip this parameter.
    pub frozen: bool,
}

impl Param {
    /// Creates a parameter from an initial value with zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            value,
            grad,
            frozen: false,
        }
    }
}

/// One differentiable operation in a [`Sequential`](crate::Sequential)
/// model.
pub trait Layer {
    /// Computes the layer output; caches activations when `train` is true.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Propagates `grad_out` (∂loss/∂output) to ∂loss/∂input, accumulating
    /// parameter gradients along the way.
    ///
    /// # Panics
    ///
    /// Panics if called before a training-mode `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// This layer's trainable parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Layer name for debugging and freeze control.
    fn name(&self) -> &str;
}

/// Fully-connected layer: `y = x·W + b` with `W: [in, out]`.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    label: String,
}

impl Dense {
    /// New dense layer with He initialization from `seed`.
    pub fn new(inputs: usize, outputs: usize, seed: u64) -> Self {
        Dense {
            weight: Param::new(he_normal(&[inputs, outputs], inputs, seed)),
            bias: Param::new(Tensor::zeros(&[outputs])),
            cached_input: None,
            label: format!("dense_{inputs}x{outputs}"),
        }
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Number of output features.
    pub fn outputs(&self) -> usize {
        self.weight.value.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = input.matmul(&self.weight.value);
        let outputs = self.outputs();
        for row in out.data_mut().chunks_mut(outputs) {
            for (o, b) in row.iter_mut().zip(self.bias.value.data()) {
                *o += b;
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        // dW = xᵀ · g ;  db = Σ_batch g ;  dx = g · Wᵀ
        let dw = input.transposed().matmul(grad_out);
        for (g, d) in self.weight.grad.data_mut().iter_mut().zip(dw.data()) {
            *g += d;
        }
        let outputs = self.outputs();
        for row in grad_out.data().chunks(outputs) {
            for (b, g) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *b += g;
            }
        }
        grad_out.matmul(&self.weight.value.transposed())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    label: &'static str,
}

impl Relu {
    /// New ReLU layer.
    pub fn new() -> Self {
        Relu {
            mask: None,
            label: "relu",
        }
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = input.clone();
        let mask: Vec<bool> = out
            .data_mut()
            .iter_mut()
            .map(|v| {
                if *v < 0.0 {
                    *v = 0.0;
                    false
                } else {
                    true
                }
            })
            .collect();
        if train {
            self.mask = Some(mask);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward");
        let data = grad_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn name(&self) -> &str {
        self.label
    }
}

/// 2-D convolution over `[N, C, H, W]` with square kernel, stride 1,
/// symmetric zero padding `k/2` ("same" for odd kernels), executed as
/// im2col + GEMM; the test suite checks it against a naive reference.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param, // [out_c, in_c, k, k]
    bias: Param,   // [out_c]
    kernel: usize,
    cached_input: Option<Tensor>,
    label: String,
}

impl Conv2d {
    /// New convolution with He initialization from `seed`.
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize, seed: u64) -> Self {
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(he_normal(
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
                seed,
            )),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            kernel,
            cached_input: None,
            label: format!("conv{kernel}x{kernel}_{in_channels}to{out_channels}"),
        }
    }

    fn dims(&self) -> (usize, usize) {
        let s = self.weight.value.shape();
        (s[0], s[1])
    }
}

impl Conv2d {
    /// Lowers the padded input into the im2col matrix
    /// `[n*h*w, in_c*k*k]` whose row `r` holds the receptive field of
    /// output position `r`.
    fn im2col(&self, input: &Tensor) -> Tensor {
        let (_, in_c) = self.dims();
        let k = self.kernel;
        let pad = k / 2;
        let [n, _, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let cols_width = in_c * k * k;
        let mut cols = vec![0.0f32; n * h * w * cols_width];
        let data = input.data();
        for b in 0..n {
            for oy in 0..h {
                for ox in 0..w {
                    let row = ((b * h + oy) * w + ox) * cols_width;
                    for ic in 0..in_c {
                        let plane = (b * in_c + ic) * h * w;
                        for ky in 0..k {
                            let iy = oy + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            let src_row = plane + (iy - pad) * w;
                            let dst = row + (ic * k + ky) * k;
                            for kx in 0..k {
                                let ix = ox + kx;
                                if ix < pad || ix - pad >= w {
                                    continue;
                                }
                                cols[dst + kx] = data[src_row + ix - pad];
                            }
                        }
                    }
                }
            }
        }
        Tensor::from_vec(cols, &[n * h * w, cols_width])
    }

    /// Scatters an im2col-shaped gradient back into input layout
    /// (the transpose of [`im2col`](Self::im2col)).
    fn col2im(&self, cols: &Tensor, shape: &[usize]) -> Tensor {
        let (_, in_c) = self.dims();
        let k = self.kernel;
        let pad = k / 2;
        let [n, _, h, w] = [shape[0], shape[1], shape[2], shape[3]];
        let cols_width = in_c * k * k;
        let mut out = Tensor::zeros(shape);
        let dst = out.data_mut();
        let src = cols.data();
        for b in 0..n {
            for oy in 0..h {
                for ox in 0..w {
                    let row = ((b * h + oy) * w + ox) * cols_width;
                    for ic in 0..in_c {
                        let plane = (b * in_c + ic) * h * w;
                        for ky in 0..k {
                            let iy = oy + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            let dst_row = plane + (iy - pad) * w;
                            let s_off = row + (ic * k + ky) * k;
                            for kx in 0..k {
                                let ix = ox + kx;
                                if ix < pad || ix - pad >= w {
                                    continue;
                                }
                                dst[dst_row + ix - pad] += src[s_off + kx];
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Weight matrix view `[in_c*k*k, out_c]` (transposed for the GEMM).
    fn weight_matrix_t(&self) -> Tensor {
        let (out_c, in_c) = self.dims();
        let k = self.kernel;
        self.weight
            .value
            .reshaped(&[out_c, in_c * k * k])
            .transposed()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (out_c, in_c) = self.dims();
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        assert_eq!(c, in_c, "channel mismatch in {}", self.label);
        // im2col + GEMM: rows are output positions, columns are filters.
        let cols = self.im2col(input);
        let flat = cols.matmul(&self.weight_matrix_t()); // [n*h*w, out_c]
                                                         // Transpose position-major [n, h*w, out_c] into channel-major
                                                         // [n, out_c, h, w] and add the bias.
        let hw = h * w;
        let mut out = Tensor::zeros(&[n, out_c, h, w]);
        {
            let src = flat.data();
            let bias = self.bias.value.data().to_vec();
            let dst = out.data_mut();
            for b in 0..n {
                for pos in 0..hw {
                    let row = (b * hw + pos) * out_c;
                    for (oc, bias_v) in bias.iter().enumerate() {
                        dst[(b * out_c + oc) * hw + pos] = src[row + oc] + bias_v;
                    }
                }
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let (out_c, in_c) = self.dims();
        let k = self.kernel;
        let [n, _, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let hw = h * w;
        // Re-layout grad_out into position-major [n*h*w, out_c].
        let mut g_flat = vec![0.0f32; n * hw * out_c];
        {
            let src = grad_out.data();
            for b in 0..n {
                for oc in 0..out_c {
                    let plane = (b * out_c + oc) * hw;
                    for pos in 0..hw {
                        g_flat[(b * hw + pos) * out_c + oc] = src[plane + pos];
                    }
                }
            }
        }
        let g = Tensor::from_vec(g_flat, &[n * hw, out_c]);
        // Bias gradient: column sums of g.
        for row in g.data().chunks(out_c) {
            for (bg, &gv) in self.bias.grad.data_mut().iter_mut().zip(row) {
                *bg += gv;
            }
        }
        // Weight gradient: gT · cols, shaped [out_c, in_c*k*k].
        let cols = self.im2col(input);
        let dw = g.transposed().matmul(&cols);
        for (wg, d) in self.weight.grad.data_mut().iter_mut().zip(dw.data()) {
            *wg += d;
        }
        // Input gradient: g · W, scattered back through col2im.
        let w_mat = self.weight.value.reshaped(&[out_c, in_c * k * k]);
        let dcols = g.matmul(&w_mat);
        self.col2im(&dcols, input.shape())
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// 2×2 max pooling with stride 2 over `[N, C, H, W]`.
#[derive(Debug, Default)]
pub struct MaxPool2 {
    argmax: Option<Vec<usize>>,
    in_shape: Vec<usize>,
    label: &'static str,
}

impl MaxPool2 {
    /// New 2×2/2 max-pool layer.
    pub fn new() -> Self {
        MaxPool2 {
            argmax: None,
            in_shape: Vec::new(),
            label: "maxpool2",
        }
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Tensor::zeros(&[n, c, oh, ow]);
        let mut argmax = vec![0usize; n * c * oh * ow];
        let mut oi = 0;
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let off = ((b * c + ch) * h + oy * 2 + dy) * w + ox * 2 + dx;
                                let v = input.data()[off];
                                if v > best {
                                    best = v;
                                    best_off = off;
                                }
                            }
                        }
                        out.data_mut()[oi] = best;
                        argmax[oi] = best_off;
                        oi += 1;
                    }
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.in_shape = input.shape().to_vec();
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward before forward");
        let mut grad_in = Tensor::zeros(&self.in_shape);
        for (g, &off) in grad_out.data().iter().zip(argmax) {
            grad_in.data_mut()[off] += g;
        }
        grad_in
    }

    fn name(&self) -> &str {
        self.label
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    in_shape: Vec<usize>,
    label: &'static str,
}

impl GlobalAvgPool {
    /// New global-average-pool layer.
    pub fn new() -> Self {
        GlobalAvgPool {
            in_shape: Vec::new(),
            label: "gap",
        }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let mut out = Tensor::zeros(&[n, c]);
        let area = (h * w) as f32;
        for b in 0..n {
            for ch in 0..c {
                let start = (b * c + ch) * h * w;
                let s: f32 = input.data()[start..start + h * w].iter().sum();
                out.data_mut()[b * c + ch] = s / area;
            }
        }
        if train {
            self.in_shape = input.shape().to_vec();
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [n, c, h, w] = [
            self.in_shape[0],
            self.in_shape[1],
            self.in_shape[2],
            self.in_shape[3],
        ];
        let mut grad_in = Tensor::zeros(&self.in_shape);
        let area = (h * w) as f32;
        for b in 0..n {
            for ch in 0..c {
                let g = grad_out.data()[b * c + ch] / area;
                let start = (b * c + ch) * h * w;
                for v in &mut grad_in.data_mut()[start..start + h * w] {
                    *v = g;
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &str {
        self.label
    }
}

/// Reshapes `[N, ...]` to `[N, F]`.
#[derive(Debug, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
    label: &'static str,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Flatten {
            in_shape: Vec::new(),
            label: "flatten",
        }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let n = input.shape()[0];
        let f = input.len() / n;
        if train {
            self.in_shape = input.shape().to_vec();
        }
        input.reshaped(&[n, f])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshaped(&self.in_shape)
    }

    fn name(&self) -> &str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check of a layer's input gradient and
    /// parameter gradients against the analytic backward pass.
    fn grad_check<L: Layer>(layer: &mut L, input: Tensor, tol: f32) {
        let eps = 1e-3f32;
        // Loss = sum of outputs (so dL/dout = 1 everywhere).
        let out = layer.forward(&input, true);
        let ones = Tensor::full(out.shape(), 1.0);
        let grad_in = layer.backward(&ones);
        // Check input gradient at a few positions.
        for probe in 0..input.len().min(8) {
            let mut plus = input.clone();
            plus.data_mut()[probe] += eps;
            let mut minus = input.clone();
            minus.data_mut()[probe] -= eps;
            let lp = layer.forward(&plus, false).sum();
            let lm = layer.forward(&minus, false).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grad_in.data()[probe];
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs()),
                "input grad mismatch at {probe}: fd={fd} analytic={an}"
            );
        }
        // Check parameter gradients at a few positions.
        let n_params = layer.params_mut().len();
        for pi in 0..n_params {
            let plen = layer.params_mut()[pi].value.len();
            for probe in (0..plen).step_by((plen / 4).max(1)) {
                let analytic = layer.params_mut()[pi].grad.data()[probe];
                layer.params_mut()[pi].value.data_mut()[probe] += eps;
                let lp = layer.forward(&input, false).sum();
                layer.params_mut()[pi].value.data_mut()[probe] -= 2.0 * eps;
                let lm = layer.forward(&input, false).sum();
                layer.params_mut()[pi].value.data_mut()[probe] += eps;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - analytic).abs() <= tol * (1.0 + fd.abs()),
                    "param {pi} grad mismatch at {probe}: fd={fd} analytic={analytic}"
                );
            }
        }
    }

    fn seeded_input(shape: &[usize], seed: u64) -> Tensor {
        crate::init::uniform(shape, 1.0, seed)
    }

    #[test]
    fn dense_grad_check() {
        let mut layer = Dense::new(5, 3, 1);
        grad_check(&mut layer, seeded_input(&[2, 5], 2), 2e-2);
    }

    #[test]
    fn conv_grad_check() {
        let mut layer = Conv2d::new(2, 3, 3, 3);
        grad_check(&mut layer, seeded_input(&[1, 2, 5, 5], 4), 3e-2);
    }

    #[test]
    fn relu_grad_check() {
        let mut layer = Relu::new();
        grad_check(&mut layer, seeded_input(&[2, 6], 5), 1e-2);
    }

    #[test]
    fn maxpool_grad_check() {
        let mut layer = MaxPool2::new();
        grad_check(&mut layer, seeded_input(&[1, 2, 4, 4], 6), 1e-2);
    }

    #[test]
    fn gap_grad_check() {
        let mut layer = GlobalAvgPool::new();
        grad_check(&mut layer, seeded_input(&[2, 3, 4, 4], 7), 1e-2);
    }

    #[test]
    fn conv_shape_preserving() {
        let mut layer = Conv2d::new(3, 8, 3, 1);
        let out = layer.forward(&Tensor::zeros(&[2, 3, 8, 8]), false);
        assert_eq!(out.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn maxpool_halves_spatial() {
        let mut layer = MaxPool2::new();
        let out = layer.forward(&Tensor::zeros(&[1, 4, 8, 8]), false);
        assert_eq!(out.shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn flatten_round_trip() {
        let mut layer = Flatten::new();
        let x = seeded_input(&[2, 3, 2, 2], 8);
        let out = layer.forward(&x, true);
        assert_eq!(out.shape(), &[2, 12]);
        let back = layer.backward(&out);
        assert_eq!(back, x);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut layer = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[1, 4]);
        let out = layer.forward(&x, false);
        assert_eq!(out.data(), &[0.0, 2.0, 0.0, 4.0]);
    }
}
