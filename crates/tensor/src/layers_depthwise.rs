//! Depthwise 2-D convolution — the building block of the MobileNet family,
//! added so the miniature engine can train separable architectures and the
//! removal-robustness contrast of the paper's Fig. 5 can be reproduced
//! with real gradient descent.

use crate::layers::{Layer, Param};
use crate::tensor::Tensor;

/// Depthwise 3×3-style convolution over `[N, C, H, W]`: one `k×k` filter
/// per channel, stride 1, "same" zero padding.
#[derive(Debug)]
pub struct DepthwiseConv2d {
    weight: Param, // [channels, k, k]
    bias: Param,   // [channels]
    kernel: usize,
    cached_input: Option<Tensor>,
    label: String,
}

impl DepthwiseConv2d {
    /// New depthwise convolution with He initialization from `seed`.
    pub fn new(channels: usize, kernel: usize, seed: u64) -> Self {
        let fan_in = kernel * kernel;
        DepthwiseConv2d {
            weight: Param::new(crate::init::he_normal(
                &[channels, kernel, kernel],
                fan_in,
                seed,
            )),
            bias: Param::new(Tensor::zeros(&[channels])),
            kernel,
            cached_input: None,
            label: format!("dwconv{kernel}x{kernel}_{channels}"),
        }
    }

    fn channels(&self) -> usize {
        self.weight.value.shape()[0]
    }
}

impl Layer for DepthwiseConv2d {
    #[allow(clippy::needless_range_loop)] // channel-indexed math reads clearest
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let k = self.kernel;
        let pad = k / 2;
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        assert_eq!(c, self.channels(), "channel mismatch in {}", self.label);
        let mut out = Tensor::zeros(&[n, c, h, w]);
        let x = input.data();
        let wt = self.weight.value.data();
        let bias = self.bias.value.data();
        {
            let o = out.data_mut();
            for b in 0..n {
                for ch in 0..c {
                    let plane = (b * c + ch) * h * w;
                    let wbase = ch * k * k;
                    for oy in 0..h {
                        for ox in 0..w {
                            let mut acc = bias[ch];
                            for ky in 0..k {
                                let iy = oy + ky;
                                if iy < pad || iy - pad >= h {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix = ox + kx;
                                    if ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    acc += x[plane + (iy - pad) * w + ix - pad]
                                        * wt[wbase + ky * k + kx];
                                }
                            }
                            o[plane + oy * w + ox] = acc;
                        }
                    }
                }
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let k = self.kernel;
        let pad = k / 2;
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        let mut grad_in = Tensor::zeros(input.shape());
        let x = input.data();
        let wt = self.weight.value.data();
        for b in 0..n {
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                let wbase = ch * k * k;
                for oy in 0..h {
                    for ox in 0..w {
                        let g = grad_out.data()[plane + oy * w + ox];
                        if g == 0.0 {
                            continue;
                        }
                        self.bias.grad.data_mut()[ch] += g;
                        for ky in 0..k {
                            let iy = oy + ky;
                            if iy < pad || iy - pad >= h {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox + kx;
                                if ix < pad || ix - pad >= w {
                                    continue;
                                }
                                let off = plane + (iy - pad) * w + ix - pad;
                                self.weight.grad.data_mut()[wbase + ky * k + kx] += g * x[off];
                                grad_in.data_mut()[off] += g * wt[wbase + ky * k + kx];
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::uniform;

    #[test]
    fn shape_preserving() {
        let mut layer = DepthwiseConv2d::new(4, 3, 1);
        let out = layer.forward(&Tensor::zeros(&[2, 4, 6, 6]), false);
        assert_eq!(out.shape(), &[2, 4, 6, 6]);
    }

    #[test]
    fn channels_do_not_mix() {
        // Energize channel 0 only; channel 1's output must stay at bias
        // level (zero).
        let mut layer = DepthwiseConv2d::new(2, 3, 2);
        let mut x = Tensor::zeros(&[1, 2, 4, 4]);
        for i in 0..16 {
            x.data_mut()[i] = 1.0;
        }
        let out = layer.forward(&x, false);
        for v in &out.data()[16..] {
            assert_eq!(*v, 0.0, "cross-channel leakage");
        }
    }

    #[test]
    fn gradient_check() {
        let mut layer = DepthwiseConv2d::new(2, 3, 3);
        let x = uniform(&[1, 2, 5, 5], 1.0, 4);
        let out = layer.forward(&x, true);
        let ones = Tensor::full(out.shape(), 1.0);
        let grad_in = layer.backward(&ones);
        let eps = 1e-3f32;
        for probe in [0usize, 7, 23, 40] {
            let mut plus = x.clone();
            plus.data_mut()[probe] += eps;
            let mut minus = x.clone();
            minus.data_mut()[probe] -= eps;
            let lp = layer.forward(&plus, false).sum();
            let lm = layer.forward(&minus, false).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grad_in.data()[probe];
            assert!(
                (fd - an).abs() < 3e-2 * (1.0 + fd.abs()),
                "input grad mismatch at {probe}: fd={fd} analytic={an}"
            );
        }
        // Weight gradient probe.
        let analytic = layer.params_mut()[0].grad.data()[4];
        layer.params_mut()[0].value.data_mut()[4] += eps;
        let lp = layer.forward(&x, false).sum();
        layer.params_mut()[0].value.data_mut()[4] -= 2.0 * eps;
        let lm = layer.forward(&x, false).sum();
        let fd = (lp - lm) / (2.0 * eps);
        assert!(
            (fd - analytic).abs() < 3e-2 * (1.0 + fd.abs()),
            "weight grad mismatch: fd={fd} analytic={analytic}"
        );
    }
}
