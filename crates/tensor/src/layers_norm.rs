//! Normalization and regularization layers: 2-D batch normalization with
//! running statistics, and inverted dropout.

use crate::layers::{Layer, Param};
use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Batch normalization over the channel axis of `[N, C, H, W]` inputs,
/// with learnable scale/shift and running statistics for inference.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
    label: String,
}

#[derive(Debug)]
struct BnCache {
    normalized: Tensor,
    std_inv: Vec<f32>,
    in_shape: Vec<usize>,
}

impl BatchNorm2d {
    /// New batch-norm layer over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::full(&[channels], 1.0)),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
            label: format!("batchnorm_{channels}"),
        }
    }

    fn channels(&self) -> usize {
        self.gamma.value.len()
    }
}

impl Layer for BatchNorm2d {
    #[allow(clippy::needless_range_loop)] // channel-indexed math reads clearest
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        assert_eq!(c, self.channels(), "channel mismatch in {}", self.label);
        let per = n * h * w;
        let mut out = input.clone();
        let mut normalized = input.clone();
        let mut std_inv = vec![0.0f32; c];
        for ch in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f64;
                let mut sum_sq = 0.0f64;
                for b in 0..n {
                    let start = (b * c + ch) * h * w;
                    for &v in &input.data()[start..start + h * w] {
                        sum += v as f64;
                        sum_sq += (v as f64) * (v as f64);
                    }
                }
                let mean = (sum / per as f64) as f32;
                let var = (sum_sq / per as f64) as f32 - mean * mean;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv = 1.0 / (var + self.eps).sqrt();
            std_inv[ch] = inv;
            let g = self.gamma.value.data()[ch];
            let bta = self.beta.value.data()[ch];
            for b in 0..n {
                let start = (b * c + ch) * h * w;
                for i in start..start + h * w {
                    let norm = (input.data()[i] - mean) * inv;
                    normalized.data_mut()[i] = norm;
                    out.data_mut()[i] = g * norm + bta;
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                normalized,
                std_inv,
                in_shape: input.shape().to_vec(),
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let [n, c, h, w] = [
            cache.in_shape[0],
            cache.in_shape[1],
            cache.in_shape[2],
            cache.in_shape[3],
        ];
        let per = (n * h * w) as f32;
        let mut grad_in = Tensor::zeros(&cache.in_shape);
        for ch in 0..c {
            // Accumulate dL/dgamma, dL/dbeta and the two correction sums.
            let mut dgamma = 0.0f32;
            let mut dbeta = 0.0f32;
            for b in 0..n {
                let start = (b * c + ch) * h * w;
                for i in start..start + h * w {
                    dgamma += grad_out.data()[i] * cache.normalized.data()[i];
                    dbeta += grad_out.data()[i];
                }
            }
            self.gamma.grad.data_mut()[ch] += dgamma;
            self.beta.grad.data_mut()[ch] += dbeta;
            let g = self.gamma.value.data()[ch];
            let inv = cache.std_inv[ch];
            for b in 0..n {
                let start = (b * c + ch) * h * w;
                for i in start..start + h * w {
                    let go = grad_out.data()[i];
                    let xn = cache.normalized.data()[i];
                    grad_in.data_mut()[i] = g * inv / per * (per * go - dbeta - xn * dgamma);
                }
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Inverted dropout: active in training (zeroing with probability `rate`
/// and scaling survivors by `1/(1-rate)`), identity at inference.
#[derive(Debug)]
pub struct Dropout {
    rate: f32,
    rng: SmallRng,
    mask: Option<Vec<f32>>,
    label: String,
}

impl Dropout {
    /// New dropout layer with the given drop probability in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn new(rate: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must be in [0, 1)");
        Dropout {
            rate,
            rng: SmallRng::seed_from_u64(seed),
            mask: None,
            label: format!("dropout_{rate}"),
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.rate == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.rate;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let data = input.data().iter().zip(&mask).map(|(v, m)| v * m).collect();
        self.mask = Some(mask);
        Tensor::from_vec(data, input.shape())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                let data = grad_out
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(g, m)| g * m)
                    .collect();
                Tensor::from_vec(data, grad_out.shape())
            }
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::uniform;

    #[test]
    fn batchnorm_normalizes_in_training() {
        let mut bn = BatchNorm2d::new(2);
        let x = uniform(&[4, 2, 3, 3], 5.0, 1);
        let out = bn.forward(&x, true);
        // Per-channel mean ≈ 0, var ≈ 1 (gamma=1, beta=0).
        for ch in 0..2 {
            let mut vals = Vec::new();
            for b in 0..4 {
                for i in 0..9 {
                    vals.push(out.at(&[b, ch, i / 3, i % 3]));
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_inference_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = uniform(&[8, 1, 4, 4], 3.0, 2);
        for _ in 0..50 {
            bn.forward(&x, true);
        }
        let train_out = bn.forward(&x, true);
        let eval_out = bn.forward(&x, false);
        // After the running stats converge to the batch stats, the two
        // modes agree closely.
        for (a, b) in train_out.data().iter().zip(eval_out.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn batchnorm_gradient_check() {
        let mut bn = BatchNorm2d::new(2);
        let x = uniform(&[2, 2, 3, 3], 1.0, 3);
        let out = bn.forward(&x, true);
        let ones = Tensor::full(out.shape(), 1.0);
        let grad_in = bn.backward(&ones);
        let eps = 1e-2f32;
        for probe in [0usize, 5, 17, 30] {
            let mut plus = x.clone();
            plus.data_mut()[probe] += eps;
            let mut minus = x.clone();
            minus.data_mut()[probe] -= eps;
            // Fresh layers so running stats do not interfere.
            let mut bn_p = BatchNorm2d::new(2);
            let mut bn_m = BatchNorm2d::new(2);
            let lp = bn_p.forward(&plus, true).sum();
            let lm = bn_m.forward(&minus, true).sum();
            let fd = (lp - lm) / (2.0 * eps);
            let an = grad_in.data()[probe];
            assert!(
                (fd - an).abs() < 5e-2 * (1.0 + fd.abs()),
                "grad mismatch at {probe}: fd={fd} analytic={an}"
            );
        }
    }

    #[test]
    fn dropout_is_identity_at_inference() {
        let mut d = Dropout::new(0.5, 1);
        let x = uniform(&[2, 8], 1.0, 4);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_preserves_expected_magnitude() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::full(&[1, 10_000], 1.0);
        let out = d.forward(&x, true);
        let mean: f32 = out.sum() / out.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn dropout_backward_matches_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = uniform(&[1, 32], 1.0, 5);
        let out = d.forward(&x, true);
        let grad = d.backward(&Tensor::full(&[1, 32], 1.0));
        for (o, (g, xi)) in out.data().iter().zip(grad.data().iter().zip(x.data())) {
            if *o == 0.0 && *xi != 0.0 {
                assert_eq!(*g, 0.0);
            } else if *xi != 0.0 {
                assert_eq!(*g, 2.0); // 1 / (1 - 0.5)
            }
        }
    }
}
