//! A small CPU tensor library with explicit-backprop neural-network layers.
//!
//! This crate is the *real* training substrate of the reproduction: where
//! the paper fine-tunes ImageNet models on a GPU farm, we demonstrate the
//! identical pipeline — pretrain, cut layers, attach a fresh head, freeze,
//! fine-tune — on miniature convolutional networks that train in seconds on
//! a CPU. Gradients are hand-derived per layer and verified against finite
//! differences in the test suite.
//!
//! # Example
//!
//! ```
//! use netcut_tensor::{layers, Sequential, SoftCrossEntropy, Sgd, Optimizer, Tensor};
//!
//! let mut model = Sequential::new(vec![
//!     Box::new(layers::Dense::new(4, 8, 1)),
//!     Box::new(layers::Relu::new()),
//!     Box::new(layers::Dense::new(8, 3, 2)),
//! ]);
//! let x = Tensor::zeros(&[2, 4]);
//! let logits = model.forward(&x, true);
//! assert_eq!(logits.shape(), &[2, 3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod init;
pub mod layers;
mod layers_depthwise;
mod layers_norm;
mod loss;
mod model;
mod optim;
mod tensor;

pub use init::{he_normal, uniform, xavier_uniform};
pub use layers::{Layer, Param};
pub use layers_depthwise::DepthwiseConv2d;
pub use layers_norm::{BatchNorm2d, Dropout};
pub use loss::{mse, SoftCrossEntropy};
pub use model::Sequential;
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Tensor;
