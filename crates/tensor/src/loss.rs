//! Loss functions. The HANDS labels are probability distributions, so the
//! primary loss is soft-label cross-entropy (equivalently KL divergence up
//! to the label entropy constant).

use crate::tensor::Tensor;

/// Softmax + soft-label cross-entropy, fused for numerical stability.
///
/// Forward takes *logits* `[N, K]` and target distributions `[N, K]`,
/// returning the mean cross-entropy `−Σ t·log softmax(z)` and caching the
/// probabilities; `grad` returns `(p − t)/N`, the gradient with respect to
/// the logits.
///
/// # Example
///
/// ```
/// use netcut_tensor::{SoftCrossEntropy, Tensor};
///
/// let logits = Tensor::from_vec(vec![2.0, 0.0, 0.0], &[1, 3]);
/// let target = Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3]);
/// let mut loss = SoftCrossEntropy::new();
/// let value = loss.forward(&logits, &target);
/// assert!(value > 0.0 && value < 1.0);
/// ```
#[derive(Debug, Default)]
pub struct SoftCrossEntropy {
    probs: Option<Tensor>,
    target: Option<Tensor>,
}

impl SoftCrossEntropy {
    /// New loss instance.
    pub fn new() -> Self {
        SoftCrossEntropy::default()
    }

    /// Computes softmax probabilities from logits (row-wise, stable).
    pub fn softmax(logits: &Tensor) -> Tensor {
        let k = *logits
            .shape()
            .last()
            .expect("logits must have a class axis");
        let mut out = logits.clone();
        for row in out.data_mut().chunks_mut(k) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Mean soft-label cross-entropy of `logits` against `target`
    /// distributions.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ or are not rank 2.
    pub fn forward(&mut self, logits: &Tensor, target: &Tensor) -> f32 {
        assert_eq!(logits.shape(), target.shape(), "shape mismatch in loss");
        assert_eq!(logits.shape().len(), 2, "loss expects [N, K]");
        let probs = Self::softmax(logits);
        let n = logits.shape()[0] as f32;
        let loss = probs
            .data()
            .iter()
            .zip(target.data())
            .map(|(&p, &t)| {
                if t > 0.0 {
                    -t * (p.max(1e-12)).ln()
                } else {
                    0.0
                }
            })
            .sum::<f32>()
            / n;
        self.probs = Some(probs);
        self.target = Some(target.clone());
        loss
    }

    /// Gradient of the last [`forward`](Self::forward) with respect to the
    /// logits: `(softmax(z) − t) / N`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn grad(&self) -> Tensor {
        let probs = self.probs.as_ref().expect("grad before forward");
        let target = self.target.as_ref().expect("grad before forward");
        let n = probs.shape()[0] as f32;
        let data = probs
            .data()
            .iter()
            .zip(target.data())
            .map(|(&p, &t)| (p - t) / n)
            .collect();
        Tensor::from_vec(data, probs.shape())
    }
}

/// Mean squared error between two equal-shape tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mse(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "shape mismatch in mse");
    let n = a.len() as f32;
    a.data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = SoftCrossEntropy::softmax(&t);
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_prediction_has_label_entropy_loss() {
        // When prediction equals a one-hot target exactly, loss → 0.
        let logits = Tensor::from_vec(vec![50.0, 0.0, 0.0], &[1, 3]);
        let target = Tensor::from_vec(vec![1.0, 0.0, 0.0], &[1, 3]);
        let mut l = SoftCrossEntropy::new();
        assert!(l.forward(&logits, &target) < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.3, 0.1, 0.9, 0.2, -0.7], &[2, 3]);
        let target = Tensor::from_vec(vec![0.7, 0.2, 0.1, 0.1, 0.3, 0.6], &[2, 3]);
        let mut l = SoftCrossEntropy::new();
        l.forward(&logits, &target);
        let g = l.grad();
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let lp = SoftCrossEntropy::new().forward(&plus, &target);
            let lm = SoftCrossEntropy::new().forward(&minus, &target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - g.data()[i]).abs() < 1e-3,
                "grad mismatch at {i}: fd={fd} analytic={}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(mse(&a, &a), 0.0);
        let b = Tensor::from_vec(vec![2.0, 4.0], &[2]);
        assert_eq!(mse(&a, &b), 2.5);
    }
}
