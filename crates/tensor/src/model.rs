//! Sequential model container with cut / freeze support — the mini-scale
//! mirror of the paper's TRN construction and transfer recipe.

use crate::layers::{Layer, Param};
use crate::loss::SoftCrossEntropy;
use crate::optim::Optimizer;
use crate::tensor::Tensor;

/// A stack of layers executed in order.
///
/// Beyond plain forward/backward, `Sequential` supports the two structural
/// operations the reproduction needs:
///
/// * [`truncate`](Self::truncate) — cut the top layers (layer removal);
/// * [`freeze_below`](Self::freeze_below) — freeze the retained features
///   for the first transfer phase.
///
/// # Example
///
/// ```
/// use netcut_tensor::{layers, Sequential, Tensor};
///
/// let mut model = Sequential::new(vec![
///     Box::new(layers::Dense::new(4, 16, 1)),
///     Box::new(layers::Relu::new()),
///     Box::new(layers::Dense::new(16, 2, 2)),
/// ]);
/// let out = model.forward(&Tensor::zeros(&[1, 4]), false);
/// assert_eq!(out.shape(), &[1, 2]);
/// model.truncate(2); // drop the classification layer
/// assert_eq!(model.len(), 2);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Sequential")
            .field("layers", &names)
            .finish()
    }
}

impl Sequential {
    /// Builds a model from a layer stack.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order.
    pub fn layer_names(&self) -> Vec<&str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Appends a layer at the top.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Cuts the model down to its first `keep` layers — layer removal.
    ///
    /// # Panics
    ///
    /// Panics if `keep` exceeds the current depth.
    pub fn truncate(&mut self, keep: usize) {
        assert!(
            keep <= self.layers.len(),
            "cannot keep more layers than exist"
        );
        self.layers.truncate(keep);
    }

    /// Runs the full stack forward.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Runs the stack forward, returning every layer's output in order
    /// (used by quantization calibration to observe activation ranges).
    pub fn forward_layers(&mut self, input: &Tensor) -> Vec<Tensor> {
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, false);
            outputs.push(x.clone());
        }
        outputs
    }

    /// Propagates a loss gradient back through the stack, accumulating
    /// parameter gradients.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All parameters, bottom layer first.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Freezes every parameter in layers `0..boundary` and unfreezes the
    /// rest — phase one of the transfer recipe trains only the new head.
    pub fn freeze_below(&mut self, boundary: usize) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            for p in layer.params_mut() {
                p.frozen = i < boundary;
            }
        }
    }

    /// Unfreezes everything (phase two: full fine-tuning at a lower
    /// learning rate).
    pub fn unfreeze_all(&mut self) {
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                p.frozen = false;
            }
        }
    }

    /// One training step on a `(batch, soft-label)` pair: forward, loss,
    /// backward, optimizer step. Returns the batch loss.
    pub fn train_step<O: Optimizer>(
        &mut self,
        x: &Tensor,
        target: &Tensor,
        loss: &mut SoftCrossEntropy,
        opt: &mut O,
    ) -> f32 {
        let logits = self.forward(x, true);
        let value = loss.forward(&logits, target);
        self.backward(&loss.grad());
        opt.step(&mut self.params_mut());
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::optim::{Adam, Sgd};

    fn xor_data() -> (Tensor, Tensor) {
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        // Soft labels: class 0 = "same", class 1 = "different".
        let y = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.0, 1.0, 1.0, 0.0], &[4, 2]);
        (x, y)
    }

    fn xor_model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Box::new(Dense::new(2, 16, seed)),
            Box::new(Relu::new()),
            Box::new(Dense::new(16, 2, seed + 1)),
        ])
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut model = xor_model(11);
        let mut loss = SoftCrossEntropy::new();
        let mut opt = Adam::new(0.05);
        let first = model.train_step(&x, &y, &mut loss, &mut opt);
        let mut last = first;
        for _ in 0..300 {
            last = model.train_step(&x, &y, &mut loss, &mut opt);
        }
        assert!(last < first * 0.05, "loss did not drop: {first} -> {last}");
        let pred = model.forward(&x, false).argmax_rows();
        assert_eq!(pred, vec![0, 1, 1, 0]);
    }

    #[test]
    fn truncate_cuts_top() {
        let mut model = xor_model(1);
        model.truncate(2);
        assert_eq!(model.len(), 2);
        let out = model.forward(&Tensor::zeros(&[1, 2]), false);
        assert_eq!(out.shape(), &[1, 16]);
    }

    #[test]
    fn freeze_below_keeps_features_fixed() {
        let (x, y) = xor_data();
        let mut model = xor_model(3);
        model.freeze_below(2);
        let before: Vec<f32> = model.params_mut()[0].value.data().to_vec();
        let mut loss = SoftCrossEntropy::new();
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..5 {
            model.train_step(&x, &y, &mut loss, &mut opt);
        }
        let after: Vec<f32> = model.params_mut()[0].value.data().to_vec();
        assert_eq!(before, after, "frozen features moved");
        model.unfreeze_all();
        for _ in 0..5 {
            model.train_step(&x, &y, &mut loss, &mut opt);
        }
        let after2: Vec<f32> = model.params_mut()[0].value.data().to_vec();
        assert_ne!(before, after2, "unfrozen features did not move");
    }

    #[test]
    fn debug_lists_layer_names() {
        let model = xor_model(1);
        let dbg = format!("{model:?}");
        assert!(dbg.contains("dense_2x16"));
        assert!(dbg.contains("relu"));
    }
}
