//! Gradient-descent optimizers operating on [`Param`] lists.

use crate::layers::Param;

/// An optimizer that applies accumulated gradients to parameters and clears
/// them. Frozen parameters are skipped (their gradients are still cleared so
/// they do not leak into later unfrozen phases).
pub trait Optimizer {
    /// Applies one update step over `params` in order. Parameter identity is
    /// positional: callers must pass the same parameter list in the same
    /// order on every step.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Changes the learning rate (the transfer recipe drops it from 1e-3 to
    /// 1e-4 for the fine-tuning phase, §III-B-3).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// New SGD optimizer with the given learning rate and momentum.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        for (param, vel) in params.iter_mut().zip(&mut self.velocity) {
            if !param.frozen {
                for ((w, g), v) in param
                    .value
                    .data_mut()
                    .iter_mut()
                    .zip(param.grad.data())
                    .zip(vel.iter_mut())
                {
                    *v = self.momentum * *v - self.lr * g;
                    *w += *v;
                }
            }
            for g in param.grad.data_mut() {
                *g = 0.0;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// New Adam optimizer with standard β₁ = 0.9, β₂ = 0.999.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for ((param, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            if !param.frozen {
                for (((w, g), mi), vi) in param
                    .value
                    .data_mut()
                    .iter_mut()
                    .zip(param.grad.data())
                    .zip(m.iter_mut())
                    .zip(v.iter_mut())
                {
                    *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                    *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
            }
            for g in param.grad.data_mut() {
                *g = 0.0;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn quadratic_param(start: f32) -> Param {
        Param::new(Tensor::from_vec(vec![start], &[1]))
    }

    /// Minimize f(w) = w² with analytic gradient 2w.
    fn run<O: Optimizer>(opt: &mut O, steps: usize) -> f32 {
        let mut p = quadratic_param(1.0);
        for _ in 0..steps {
            let w = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * w;
            opt.step(&mut [&mut p]);
        }
        p.value.data()[0].abs()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(run(&mut Sgd::new(0.1, 0.0), 50) < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let plain = run(&mut Sgd::new(0.02, 0.0), 40);
        let momentum = run(&mut Sgd::new(0.02, 0.9), 40);
        assert!(momentum < plain);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(run(&mut Adam::new(0.2), 100) < 1e-2);
    }

    #[test]
    fn frozen_params_do_not_move_but_grads_clear() {
        let mut p = quadratic_param(1.0);
        p.frozen = true;
        p.grad.data_mut()[0] = 5.0;
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.data()[0], 1.0);
        assert_eq!(p.grad.data()[0], 0.0);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Sgd::new(1e-3, 0.9);
        assert_eq!(opt.learning_rate(), 1e-3);
        opt.set_learning_rate(1e-4);
        assert_eq!(opt.learning_rate(), 1e-4);
    }
}
