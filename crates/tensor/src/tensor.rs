use std::fmt;

/// A dense row-major `f32` tensor.
///
/// Shapes follow the `[batch, ...]` convention: `[N, F]` for feature
/// vectors, `[N, C, H, W]` for image batches.
///
/// # Example
///
/// ```
/// use netcut_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; shape.iter().product()],
        }
    }

    /// Wraps `data` with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the raw data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let o = self.offset(index);
        self.data[o] = value;
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < dim, "index {ix} out of bounds for axis {i} ({dim})");
            off = off * dim + ix;
        }
        off
    }

    /// Returns a copy reshaped to `shape` (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in add");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise scaling by a constant.
    pub fn scaled(&self, factor: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Matrix product of two rank-2 tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimensions disagree: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let row = &other.data[p * n..(p + 1) * n];
                let dst = &mut out[i * n..(i + 1) * n];
                for (d, &b) in dst.iter_mut().zip(row) {
                    *d += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Index of the maximum element along the last axis, per leading row
    /// (rank-2 only).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows requires rank 2");
        let n = self.shape[1];
        self.data
            .chunks(n)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map_or(0, |(i, _)| i)
            })
            .collect()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ({} elements)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.at(&[1, 2, 3]), 7.0);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        t.at(&[2, 0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let t = a.transposed();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transposed(), a);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let id = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn argmax_rows_picks_per_row() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 6.0]);
        assert_eq!(a.scaled(2.0).data(), &[2.0, 4.0]);
    }
}
