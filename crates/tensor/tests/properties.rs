//! Property-based tests of the tensor engine: algebraic identities of the
//! core ops and gradient-flow invariants of the layers.

use netcut_tensor::layers::{Conv2d, Dense, GlobalAvgPool, Layer, MaxPool2, Relu};
use netcut_tensor::{uniform, SoftCrossEntropy, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (l, r) in left.data().iter().zip(right.data()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    #[test]
    fn transpose_reverses_matmul(a in tensor_strategy(3, 4), b in tensor_strategy(4, 2)) {
        let ab_t = a.matmul(&b).transposed();
        let bt_at = b.transposed().matmul(&a.transposed());
        for (l, r) in ab_t.data().iter().zip(bt_at.data()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(logits in tensor_strategy(4, 5)) {
        let p = SoftCrossEntropy::softmax(&logits);
        for row in p.data().chunks(5) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(logits in tensor_strategy(2, 4), shift in -5.0f32..5.0) {
        let base = SoftCrossEntropy::softmax(&logits);
        let mut shifted = logits.clone();
        for v in shifted.data_mut() {
            *v += shift;
        }
        let after = SoftCrossEntropy::softmax(&shifted);
        for (a, b) in base.data().iter().zip(after.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_backward_passes_only_active_gradients(seed in 0u64..500) {
        let x = uniform(&[2, 10], 2.0, seed);
        let mut relu = Relu::new();
        let out = relu.forward(&x, true);
        let ones = Tensor::full(out.shape(), 1.0);
        let grad = relu.backward(&ones);
        for (g, v) in grad.data().iter().zip(x.data()) {
            if *v < 0.0 {
                prop_assert_eq!(*g, 0.0);
            } else {
                prop_assert_eq!(*g, 1.0);
            }
        }
    }

    #[test]
    fn dense_is_linear_in_its_input(seed in 0u64..500, alpha in -2.0f32..2.0) {
        let mut layer = Dense::new(6, 4, seed);
        // Zero the bias so f is strictly linear.
        for p in layer.params_mut() {
            if p.value.shape().len() == 1 {
                for v in p.value.data_mut() {
                    *v = 0.0;
                }
            }
        }
        let x = uniform(&[1, 6], 1.0, seed + 1);
        let fx = layer.forward(&x, false);
        let fax = layer.forward(&x.scaled(alpha), false);
        for (a, b) in fax.data().iter().zip(fx.data()) {
            prop_assert!((a - alpha * b).abs() < 1e-3, "{a} vs {}", alpha * b);
        }
    }

    #[test]
    fn gap_preserves_mean_mass(seed in 0u64..500) {
        let x = uniform(&[2, 3, 4, 4], 1.0, seed);
        let mut gap = GlobalAvgPool::new();
        let out = gap.forward(&x, false);
        // Total mass is preserved up to the area factor.
        prop_assert!((out.sum() * 16.0 - x.sum()).abs() < 1e-3);
    }

    #[test]
    fn maxpool_output_bounded_by_input_max(seed in 0u64..500) {
        let x = uniform(&[1, 2, 6, 6], 3.0, seed);
        let mut pool = MaxPool2::new();
        let out = pool.forward(&x, false);
        let in_max = x.data().iter().copied().fold(f32::MIN, f32::max);
        let out_max = out.data().iter().copied().fold(f32::MIN, f32::max);
        prop_assert_eq!(in_max, out_max);
        for v in out.data() {
            prop_assert!(*v <= in_max);
        }
    }

    #[test]
    fn conv_matches_naive_reference(seed in 0u64..200) {
        // The production Conv2d runs im2col + GEMM; compare it against a
        // direct 7-loop convolution on random inputs and weights.
        let (in_c, out_c, k, h, w) = (2usize, 3usize, 3usize, 5usize, 6usize);
        let mut conv = Conv2d::new(in_c, out_c, k, seed);
        let x = uniform(&[2, in_c, h, w], 1.5, seed + 1);
        let fast = conv.forward(&x, false);
        // Naive reference.
        let params = conv.params_mut();
        let weight = params[0].value.clone();
        let bias = params[1].value.clone();
        let pad = k / 2;
        for b in 0..2 {
            for oc in 0..out_c {
                for oy in 0..h {
                    for ox in 0..w {
                        let mut acc = bias.data()[oc];
                        for ic in 0..in_c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = oy + ky;
                                    let ix = ox + kx;
                                    if iy < pad || iy - pad >= h || ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    acc += x.at(&[b, ic, iy - pad, ix - pad])
                                        * weight.at(&[oc, ic, ky, kx]);
                                }
                            }
                        }
                        let got = fast.at(&[b, oc, oy, ox]);
                        prop_assert!(
                            (got - acc).abs() < 1e-4,
                            "mismatch at [{b},{oc},{oy},{ox}]: {got} vs {acc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn conv_of_zero_input_is_pure_bias(seed in 0u64..200) {
        let mut conv = Conv2d::new(2, 3, 3, seed);
        let out = conv.forward(&Tensor::zeros(&[1, 2, 5, 5]), false);
        // Every output position of channel c equals bias[c] (zero here).
        for v in out.data() {
            prop_assert_eq!(*v, 0.0);
        }
    }

    #[test]
    fn cross_entropy_is_minimized_by_the_target(target_row in prop::collection::vec(0.05f32..1.0, 4)) {
        let sum: f32 = target_row.iter().sum();
        let target: Vec<f32> = target_row.iter().map(|v| v / sum).collect();
        let t = Tensor::from_vec(target.clone(), &[1, 4]);
        // Logits matching log-target give lower loss than uniform logits.
        let matched = Tensor::from_vec(target.iter().map(|v| v.ln()).collect(), &[1, 4]);
        let uniform_logits = Tensor::zeros(&[1, 4]);
        let l_match = SoftCrossEntropy::new().forward(&matched, &t);
        let l_uniform = SoftCrossEntropy::new().forward(&uniform_logits, &t);
        prop_assert!(l_match <= l_uniform + 1e-6);
    }
}
