//! Retraining-time accounting: the FLOPs-based cost model behind the
//! paper's exploration-time comparison (183 h for 148 blockwise candidates
//! vs 6.7 h for NetCut's proposals on a Tesla K20m, §V-C).

use netcut_graph::Network;
use netcut_sim::DeviceModel;
use serde::{Deserialize, Serialize};

/// FLOPs-based model of how long a TRN takes to retrain on the training
/// device, following the paper's recipe (§III-B-3): a head-only phase with
/// the features frozen, then 50 epochs of full fine-tuning at a reduced
/// learning rate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingCostModel {
    /// Training device (Tesla K20m in the paper).
    pub device: DeviceModel,
    /// Number of training images per epoch.
    pub dataset_size: usize,
    /// Epochs with features frozen (forward + head-only backward).
    pub head_epochs: usize,
    /// Epochs of full fine-tuning (forward + full backward).
    pub finetune_epochs: usize,
    /// Sustained fraction of device peak achieved by the training stack.
    pub utilization: f64,
}

impl TrainingCostModel {
    /// The configuration used for the paper-scale experiments: K20m-class
    /// device, HANDS-scale dataset, 50 fine-tuning epochs.
    pub fn paper() -> Self {
        TrainingCostModel {
            device: DeviceModel::tesla_k20m(),
            dataset_size: 12_000,
            head_epochs: 10,
            finetune_epochs: 50,
            utilization: 0.35,
        }
    }

    /// Wall-clock hours to retrain `net` once.
    ///
    /// Forward + backward costs ≈ 3× a forward pass; the frozen phase pays
    /// forward plus a marginal head backward (≈ 1.2×).
    pub fn train_hours(&self, net: &Network) -> f64 {
        let flops_fwd = net.stats().total_flops as f64;
        let per_image =
            flops_fwd * (self.head_epochs as f64 * 1.2 + self.finetune_epochs as f64 * 3.0);
        let total = per_image * self.dataset_size as f64;
        let throughput = self.device.peak_gflops * 1e9 * self.utilization;
        total / throughput / 3600.0
    }

    /// Total hours to retrain every network in `nets`.
    pub fn total_hours<'a>(&self, nets: impl IntoIterator<Item = &'a Network>) -> f64 {
        nets.into_iter().map(|n| self.train_hours(n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcut_graph::{zoo, HeadSpec};

    #[test]
    fn bigger_networks_cost_more() {
        let cost = TrainingCostModel::paper();
        let small = cost.train_hours(&zoo::mobilenet_v1(0.25));
        let big = cost.train_hours(&zoo::resnet50());
        assert!(big > small * 10.0, "{big} vs {small}");
    }

    #[test]
    fn resnet_costs_hours_not_minutes_or_days() {
        let cost = TrainingCostModel::paper();
        let h = cost.train_hours(&zoo::resnet50());
        assert!(h > 1.0 && h < 10.0, "resnet50 retrain = {h} h");
    }

    #[test]
    fn cutting_reduces_cost() {
        let cost = TrainingCostModel::paper();
        let net = zoo::inception_v3();
        let full = cost.train_hours(&net);
        let trn = net.cut_blocks(6).unwrap().with_head(&HeadSpec::default());
        let cut = cost.train_hours(&trn);
        assert!(cut < full * 0.8);
    }

    #[test]
    fn total_sums_members() {
        let cost = TrainingCostModel::paper();
        let nets = [zoo::mobilenet_v1(0.25), zoo::mobilenet_v1(0.5)];
        let total = cost.total_hours(nets.iter());
        let sum: f64 = nets.iter().map(|n| cost.train_hours(n)).sum();
        assert!((total - sum).abs() < 1e-12);
    }
}
