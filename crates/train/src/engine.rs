//! The *real* transfer pipeline, miniaturized: pretrain a small CNN on the
//! complex synthetic object task, remove its top layers, attach a fresh
//! head, and fine-tune on the simpler grasp task with the paper's two-phase
//! recipe (§III-B-3). This demonstrates end-to-end, with actual gradient
//! descent, the hypothesis layer removal rests on: the last layers of a
//! network pretrained on a harder task are problem-specific and contribute
//! little when transferring to a simpler one.

use netcut_data::{mean_angular_similarity, Dataset, IMAGE_CHANNELS};
use netcut_tensor::layers::{Conv2d, Dense, GlobalAvgPool, MaxPool2, Relu};
use netcut_tensor::{Adam, Sequential, SoftCrossEntropy, Tensor};

/// Architecture of the miniature CNN.
#[derive(Debug, Clone, Copy)]
pub struct MiniConfig {
    /// Number of conv+ReLU feature blocks.
    pub conv_blocks: usize,
    /// Channel width of every conv layer.
    pub width: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for MiniConfig {
    fn default() -> Self {
        MiniConfig {
            conv_blocks: 4,
            width: 8,
            seed: 1,
        }
    }
}

/// Two-phase fine-tuning schedule (defaults follow §III-B-3: start at
/// lr 1e-3 with features frozen, then continue with everything trainable
/// at 1e-4 — epochs scaled down to mini size).
#[derive(Debug, Clone, Copy)]
pub struct FineTuneConfig {
    /// Epochs with the retained features frozen.
    pub head_epochs: usize,
    /// Epochs of full fine-tuning.
    pub finetune_epochs: usize,
    /// Learning rate of the frozen phase.
    pub head_lr: f32,
    /// Learning rate of the full phase.
    pub finetune_lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            head_epochs: 4,
            finetune_epochs: 8,
            head_lr: 1e-3,
            finetune_lr: 1e-4,
            batch_size: 32,
            seed: 7,
        }
    }
}

impl MiniConfig {
    /// Number of layers forming the feature extractor when `cut` conv
    /// blocks have been removed (conv+ReLU per block, one pool after the
    /// first block).
    pub fn feature_layers(&self, cut: usize) -> usize {
        let kept = self.conv_blocks - cut;
        if kept == 0 {
            0
        } else {
            2 * kept + 1
        }
    }
}

/// Builds the miniature CNN: `conv_blocks` × (3×3 conv + ReLU) with a 2×2
/// max-pool after the first block, then GAP and a dense classifier.
pub fn build(cfg: &MiniConfig, classes: usize) -> Sequential {
    let mut layers: Vec<Box<dyn netcut_tensor::Layer>> = Vec::new();
    let mut in_ch = IMAGE_CHANNELS;
    for b in 0..cfg.conv_blocks {
        layers.push(Box::new(Conv2d::new(
            in_ch,
            cfg.width,
            3,
            cfg.seed + b as u64,
        )));
        layers.push(Box::new(Relu::new()));
        if b == 0 {
            layers.push(Box::new(MaxPool2::new()));
        }
        in_ch = cfg.width;
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(Dense::new(cfg.width, classes, cfg.seed + 1000)));
    let mut model = Sequential::new(layers);
    // Classifier heads start near zero so initial predictions are soft;
    // He-scale logits saturate the softmax and stall fine-tuning.
    let mut params = model.params_mut();
    let head_weight = params.len() - 2;
    for p in &mut params[head_weight..] {
        p.value = p.value.scaled(0.05);
    }
    model
}

/// Trains `model` on `data` for `epochs` epochs with Adam at `lr`.
pub fn train(
    model: &mut Sequential,
    data: &Dataset,
    epochs: usize,
    lr: f32,
    batch_size: usize,
    seed: u64,
) -> f32 {
    let mut span = netcut_obs::span("train.fit");
    span.field("epochs", epochs);
    let mut loss = SoftCrossEntropy::new();
    let mut opt = Adam::new(lr);
    let mut last = 0.0;
    for epoch in 0..epochs {
        let mut epoch_loss = 0.0;
        let batches = data.epoch_batches(batch_size, seed + epoch as u64);
        let n = batches.len() as f32;
        for idx in batches {
            let (x, y) = data.batch(&idx);
            epoch_loss += model.train_step(&x, &y, &mut loss, &mut opt);
        }
        last = epoch_loss / n;
        if netcut_obs::enabled() {
            netcut_obs::instant(
                "train.epoch",
                &[("epoch", epoch.into()), ("loss", (last as f64).into())],
            );
        }
    }
    span.field("final_loss", last as f64);
    last
}

/// Trains with a learning-rate schedule and early stopping, returning the
/// number of epochs actually run and the best epoch loss.
#[allow(clippy::too_many_arguments)] // training knobs are clearer flat than bundled
pub fn train_scheduled(
    model: &mut Sequential,
    data: &Dataset,
    max_epochs: usize,
    base_lr: f32,
    schedule: crate::LrSchedule,
    stopper: &mut crate::EarlyStopping,
    batch_size: usize,
    seed: u64,
) -> (usize, f32) {
    let mut span = netcut_obs::span("train.fit_scheduled");
    span.field("max_epochs", max_epochs);
    let mut loss = SoftCrossEntropy::new();
    let mut opt = Adam::new(base_lr);
    for epoch in 0..max_epochs {
        use netcut_tensor::Optimizer;
        opt.set_learning_rate(schedule.lr_at(epoch, base_lr));
        let mut epoch_loss = 0.0;
        let batches = data.epoch_batches(batch_size, seed + epoch as u64);
        let n = batches.len() as f32;
        for idx in batches {
            let (x, y) = data.batch(&idx);
            epoch_loss += model.train_step(&x, &y, &mut loss, &mut opt);
        }
        if netcut_obs::enabled() {
            netcut_obs::instant(
                "train.epoch",
                &[
                    ("epoch", epoch.into()),
                    ("loss", ((epoch_loss / n) as f64).into()),
                ],
            );
        }
        if stopper.should_stop(epoch_loss / n) {
            span.field("epochs_run", epoch + 1);
            return (epoch + 1, stopper.best());
        }
    }
    span.field("epochs_run", max_epochs);
    (max_epochs, stopper.best())
}

/// Pretrains a fresh mini CNN on `data` (the complex source task).
pub fn pretrain(cfg: &MiniConfig, data: &Dataset, epochs: usize) -> Sequential {
    let mut model = build(cfg, data.classes());
    train(&mut model, data, epochs, 1e-3, 32, cfg.seed ^ 0xABCD);
    model
}

/// Clones the values of every parameter (a weight snapshot).
pub fn snapshot(model: &mut Sequential) -> Vec<Tensor> {
    model
        .params_mut()
        .into_iter()
        .map(|p| p.value.clone())
        .collect()
}

/// Restores a weight snapshot into a model of identical architecture
/// prefix: parameters are matched positionally and by shape; restoration
/// stops at the first mismatch (so a truncated model restores its retained
/// prefix from a full snapshot).
pub fn restore_prefix(model: &mut Sequential, weights: &[Tensor]) -> usize {
    let mut restored = 0;
    for (param, saved) in model.params_mut().into_iter().zip(weights) {
        if param.value.shape() != saved.shape() {
            break;
        }
        param.value = saved.clone();
        restored += 1;
    }
    restored
}

/// Constructs a TRN of the pretrained mini CNN: keep all but `cut` conv
/// blocks, attach a fresh GAP + dense head for `classes` outputs, and
/// restore the retained feature weights from `pretrained_weights`.
///
/// # Panics
///
/// Panics if `cut >= cfg.conv_blocks` (at least one feature block must
/// remain).
pub fn build_trimmed(
    cfg: &MiniConfig,
    pretrained_weights: &[Tensor],
    cut: usize,
    classes: usize,
) -> Sequential {
    assert!(cut < cfg.conv_blocks, "cannot remove every feature block");
    let kept_cfg = MiniConfig {
        conv_blocks: cfg.conv_blocks - cut,
        ..*cfg
    };
    let mut model = build(&kept_cfg, classes);
    // The fresh head must NOT inherit pretrained head weights: restore only
    // the conv prefix (2 params per conv block).
    let conv_params = 2 * kept_cfg.conv_blocks;
    let mut limit = pretrained_weights.to_vec();
    limit.truncate(conv_params);
    let restored = restore_prefix(&mut model, &limit);
    debug_assert_eq!(restored, conv_params);
    model
}

/// Runs the two-phase transfer recipe on a trimmed model, returning the
/// angular-similarity accuracy on `test`.
pub fn fine_tune(
    model: &mut Sequential,
    cfg: &MiniConfig,
    cut: usize,
    train_data: &Dataset,
    test_data: &Dataset,
    ft: &FineTuneConfig,
) -> f64 {
    model.freeze_below(cfg.feature_layers(cut));
    train(
        model,
        train_data,
        ft.head_epochs,
        ft.head_lr,
        ft.batch_size,
        ft.seed,
    );
    model.unfreeze_all();
    train(
        model,
        train_data,
        ft.finetune_epochs,
        ft.finetune_lr,
        ft.batch_size,
        ft.seed + 1,
    );
    evaluate(model, test_data)
}

/// Mean angular similarity of the model's softmax predictions on `data`.
pub fn evaluate(model: &mut Sequential, data: &Dataset) -> f64 {
    let (x, y) = data.full_batch();
    let logits = model.forward(&x, false);
    let probs = SoftCrossEntropy::softmax(&logits);
    mean_angular_similarity(probs.data(), y.data(), data.classes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_shapes() {
        let cfg = MiniConfig {
            conv_blocks: 3,
            width: 6,
            seed: 2,
        };
        let mut m = build(&cfg, 5);
        let out = m.forward(&Tensor::zeros(&[2, IMAGE_CHANNELS, 12, 12]), false);
        assert_eq!(out.shape(), &[2, 5]);
        assert_eq!(m.len(), 3 * 2 + 1 + 2);
    }

    #[test]
    fn training_reduces_loss() {
        let cfg = MiniConfig {
            conv_blocks: 2,
            width: 6,
            seed: 3,
        };
        let data = Dataset::hands(64, 11);
        let mut m = build(&cfg, 5);
        let first = train(&mut m, &data, 1, 1e-3, 16, 5);
        let later = train(&mut m, &data, 6, 1e-3, 16, 6);
        assert!(later < first, "loss {first} -> {later}");
    }

    #[test]
    fn scheduled_training_stops_early_on_plateau() {
        let cfg = MiniConfig {
            conv_blocks: 2,
            width: 6,
            seed: 31,
        };
        let data = Dataset::hands(64, 55);
        let mut model = build(&cfg, 5);
        let mut stopper = crate::EarlyStopping::new(3, 1e-3);
        let (epochs, best) = train_scheduled(
            &mut model,
            &data,
            200,
            1e-3,
            crate::LrSchedule::Cosine {
                total_epochs: 40,
                min_lr: 1e-5,
            },
            &mut stopper,
            16,
            9,
        );
        assert!(epochs < 200, "never stopped early (ran {epochs})");
        assert!(best.is_finite() && best > 0.0);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let cfg = MiniConfig {
            conv_blocks: 2,
            width: 4,
            seed: 4,
        };
        let mut a = build(&cfg, 5);
        let weights = snapshot(&mut a);
        let mut b = build(&MiniConfig { seed: 99, ..cfg }, 5);
        let restored = restore_prefix(&mut b, &weights);
        assert_eq!(restored, weights.len());
        let x = netcut_tensor::uniform(&[1, IMAGE_CHANNELS, 12, 12], 1.0, 1);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn trimmed_model_reuses_conv_features() {
        let cfg = MiniConfig {
            conv_blocks: 3,
            width: 4,
            seed: 5,
        };
        let mut full = build(&cfg, 10);
        let weights = snapshot(&mut full);
        let mut trimmed = build_trimmed(&cfg, &weights, 1, 5);
        // 2 conv blocks kept → 4 conv params, then fresh head (2 params).
        let x = netcut_tensor::uniform(&[1, IMAGE_CHANNELS, 12, 12], 1.0, 2);
        let out = trimmed.forward(&x, false);
        assert_eq!(out.shape(), &[1, 5]);
        // First conv weights must match the pretrained ones.
        assert_eq!(trimmed.params_mut()[0].value, weights[0]);
    }

    #[test]
    fn transfer_beats_random_init() {
        // Fine-tuning from pretrained features must beat training the same
        // architecture from scratch under the same small budget — the core
        // premise of transfer learning (§IV).
        let cfg = MiniConfig {
            conv_blocks: 3,
            width: 8,
            seed: 6,
        };
        // Transfer shines when the target data is scarce relative to the
        // source: plenty of source objects, few labelled grasps.
        let source = Dataset::objects(500, 21);
        let (target_train, target_test) = Dataset::hands(400, 22).split(0.2);
        let mut pre = pretrain(&cfg, &source, 40);
        let weights = snapshot(&mut pre);
        let ft = FineTuneConfig {
            head_epochs: 30,
            finetune_epochs: 15,
            ..FineTuneConfig::default()
        };
        let mut transferred = build_trimmed(&cfg, &weights, 0, 5);
        let acc_transfer = fine_tune(&mut transferred, &cfg, 0, &target_train, &target_test, &ft);
        // Baseline: identical architecture and schedule but *random*
        // (untrained) features — isolates the value of the pretrained
        // representation.
        let mut scratch = build(&MiniConfig { seed: 77, ..cfg }, 5);
        let acc_scratch = fine_tune(&mut scratch, &cfg, 0, &target_train, &target_test, &ft);
        assert!(
            acc_transfer > acc_scratch,
            "transfer {acc_transfer:.3} vs scratch {acc_scratch:.3}"
        );
    }
}
