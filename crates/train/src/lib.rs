//! Training substrates for the NetCut reproduction.
//!
//! Three pieces, replacing the paper's GPU-farm fine-tuning runs:
//!
//! 1. [`TransferModel`] — a calibrated *surrogate* that assigns every TRN a
//!    post-deployment angular-similarity accuracy consistent with the
//!    paper's observed family behaviours (Fig. 5): DenseNet/InceptionV3
//!    tolerate deep cuts, ResNet degrades gently, MobileNets degrade fast,
//!    and MobileNetV2 additionally pays the per-tensor INT8 quantization
//!    penalty documented in the paper's own reference \[20\].
//! 2. [`engine`] — a *real* transfer pipeline on the [`netcut_tensor`]
//!    engine: pretrain a miniature CNN on the complex synthetic task, cut
//!    its top layers, attach a fresh head, and run the paper's two-phase
//!    recipe (features frozen at lr 1e-3, then everything at 1e-4).
//! 3. [`TrainingCostModel`] — FLOPs-based retraining-time accounting on a
//!    Tesla K20m-class device, powering the 183 h vs 6.7 h exploration
//!    comparison (§V-C).
//!
//! # Example
//!
//! ```
//! use netcut_graph::{zoo, HeadSpec};
//! use netcut_train::TransferModel;
//!
//! let model = TransferModel::paper();
//! let net = zoo::resnet50();
//! let trn = net.cut_blocks(2)?.with_head(&HeadSpec::default());
//! let acc = model.accuracy(&trn);
//! assert!(acc > 0.5 && acc < 1.0);
//! # Ok::<(), netcut_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
pub mod engine;
pub mod multihead;
mod retrain;
mod schedule;
mod surrogate;

pub use cost::TrainingCostModel;
pub use multihead::{
    calibrated_exit_curve, joint_fine_tune, JointOutcome, JointTrainConfig, MultiHeadNet,
};
pub use retrain::{Retrainer, SurrogateRetrainer, TrainedTrn};
pub use schedule::{EarlyStopping, LrSchedule};
pub use surrogate::{TransferModel, TransferProfile, WidthPruningModel};
