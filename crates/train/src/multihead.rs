//! Joint multi-head fine-tuning: the mini-scale counterpart of the
//! "anytime TRN" refactor. Instead of fine-tuning one trimmed network per
//! rung, a single backbone carries a classifier head at *every* block
//! boundary and all heads train jointly against a weighted sum of per-head
//! soft-cross-entropy losses. The result is one set of weights whose exits
//! form the serve ladder's exit table.
//!
//! Training is deliberately serial and seed-driven: a joint fine-tune with
//! the same seeds is bit-identical run to run (and therefore independent of
//! the evaluation `--jobs` level that may sit above it).

use crate::engine::MiniConfig;
use netcut_data::{mean_angular_similarity, Dataset, IMAGE_CHANNELS};
use netcut_tensor::layers::{Conv2d, Dense, GlobalAvgPool, MaxPool2, Relu};
use netcut_tensor::{Adam, Optimizer, Param, Sequential, SoftCrossEntropy, Tensor};

/// One backbone, one exit head per block boundary.
///
/// Segment `k` is the `k`-th conv block of the [`MiniConfig`] architecture;
/// head `k` (GAP + dense classifier) taps the output of segment `k`, so
/// exit `k` computes segments `0..=k` plus its own head — exactly the
/// multi-exit graph [`netcut_graph::Network::with_exit_heads`] describes
/// statically.
pub struct MultiHeadNet {
    segments: Vec<Sequential>,
    heads: Vec<Sequential>,
}

/// Joint fine-tuning schedule.
#[derive(Debug, Clone)]
pub struct JointTrainConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffling seed.
    pub seed: u64,
    /// Per-head loss weights, shallowest first. Empty means uniform. Extra
    /// entries are ignored; missing entries default to 1.
    pub head_weights: Vec<f32>,
}

impl Default for JointTrainConfig {
    fn default() -> Self {
        JointTrainConfig {
            epochs: 8,
            lr: 1e-3,
            batch_size: 32,
            seed: 7,
            head_weights: Vec::new(),
        }
    }
}

/// Result of one joint fine-tune.
#[derive(Debug, Clone, PartialEq)]
pub struct JointOutcome {
    /// Final per-head training loss, shallowest exit first.
    pub head_losses: Vec<f32>,
    /// Raw per-exit angular-similarity accuracy on the held-out set.
    pub exit_accuracy: Vec<f64>,
    /// [`calibrated_exit_curve`] of `exit_accuracy` — the monotone curve
    /// the serve exit table deploys.
    pub calibrated_accuracy: Vec<f64>,
}

impl MultiHeadNet {
    /// Builds a fresh multi-head network: `cfg.conv_blocks` backbone
    /// segments (3×3 conv + ReLU, a 2×2 max-pool after the first) and one
    /// GAP + dense head of `classes` outputs per segment.
    pub fn build(cfg: &MiniConfig, classes: usize) -> Self {
        let mut segments = Vec::with_capacity(cfg.conv_blocks);
        let mut in_ch = IMAGE_CHANNELS;
        for b in 0..cfg.conv_blocks {
            let mut layers: Vec<Box<dyn netcut_tensor::Layer>> = vec![
                Box::new(Conv2d::new(in_ch, cfg.width, 3, cfg.seed + b as u64)),
                Box::new(Relu::new()),
            ];
            if b == 0 {
                layers.push(Box::new(MaxPool2::new()));
            }
            segments.push(Sequential::new(layers));
            in_ch = cfg.width;
        }
        let mut heads = Vec::with_capacity(cfg.conv_blocks);
        for k in 0..cfg.conv_blocks {
            let mut head = Sequential::new(vec![
                Box::new(GlobalAvgPool::new()),
                Box::new(Dense::new(cfg.width, classes, cfg.seed + 2000 + k as u64)),
            ]);
            // Same damping as the single-head builder: near-zero classifier
            // weights keep the initial softmax soft on every exit.
            for p in head.params_mut() {
                p.value = p.value.scaled(0.05);
            }
            heads.push(head);
        }
        MultiHeadNet { segments, heads }
    }

    /// Builds the multi-head network and restores its backbone from a
    /// pretrained single-head snapshot (two parameters per conv block, as
    /// produced by [`crate::engine::snapshot`]). Heads stay fresh.
    pub fn from_pretrained(cfg: &MiniConfig, weights: &[Tensor], classes: usize) -> Self {
        let mut net = MultiHeadNet::build(cfg, classes);
        for (b, segment) in net.segments.iter_mut().enumerate() {
            for (param, saved) in segment
                .params_mut()
                .into_iter()
                .zip(weights.iter().skip(2 * b).take(2))
            {
                if param.value.shape() == saved.shape() {
                    param.value = saved.clone();
                }
            }
        }
        net
    }

    /// Number of exits (= backbone segments).
    pub fn num_exits(&self) -> usize {
        self.heads.len()
    }

    /// Forward pass returning the logits of every exit, shallowest first.
    pub fn forward_exits(&mut self, x: &Tensor, train: bool) -> Vec<Tensor> {
        let mut cur = x.clone();
        let mut logits = Vec::with_capacity(self.heads.len());
        for (segment, head) in self.segments.iter_mut().zip(&mut self.heads) {
            cur = segment.forward(&cur, train);
            logits.push(head.forward(&cur, train));
        }
        logits
    }

    /// One joint training step: every head's soft-cross-entropy against the
    /// same labels, weighted per head, gradients accumulated down the
    /// shared backbone, one Adam step over all parameters. Returns the
    /// per-head batch losses.
    pub fn joint_train_step(
        &mut self,
        x: &Tensor,
        target: &Tensor,
        weights: &[f32],
        opt: &mut Adam,
    ) -> Vec<f32> {
        let logits = self.forward_exits(x, true);
        let mut head_losses = Vec::with_capacity(logits.len());
        let mut feature_grads = Vec::with_capacity(logits.len());
        for (k, (head, logit)) in self.heads.iter_mut().zip(&logits).enumerate() {
            let w = weights.get(k).copied().unwrap_or(1.0);
            let mut loss = SoftCrossEntropy::new();
            head_losses.push(loss.forward(logit, target));
            feature_grads.push(head.backward(&loss.grad().scaled(w)));
        }
        // Walk the backbone deepest-first: each segment receives its own
        // head's gradient plus whatever flowed down from deeper segments.
        let mut pending: Option<Tensor> = None;
        for (segment, head_grad) in self.segments.iter_mut().zip(feature_grads).rev() {
            let total = match pending.take() {
                Some(deeper) => head_grad.add(&deeper),
                None => head_grad,
            };
            pending = Some(segment.backward(&total));
        }
        let mut params: Vec<&mut Param> = Vec::new();
        for segment in &mut self.segments {
            params.extend(segment.params_mut());
        }
        for head in &mut self.heads {
            params.extend(head.params_mut());
        }
        opt.step(&mut params);
        head_losses
    }

    /// Per-exit mean angular similarity on `data`, shallowest exit first.
    pub fn evaluate_exits(&mut self, data: &Dataset) -> Vec<f64> {
        let (x, y) = data.full_batch();
        self.forward_exits(&x, false)
            .iter()
            .map(|logits| {
                let probs = SoftCrossEntropy::softmax(logits);
                mean_angular_similarity(probs.data(), y.data(), data.classes())
            })
            .collect()
    }
}

/// Running maximum of a raw per-exit accuracy curve: the curve the exit
/// table deploys. Serving never loses accuracy by going deeper, because a
/// deeper exit whose raw head underperforms is calibrated to answer with
/// the best shallower head's quality.
pub fn calibrated_exit_curve(raw: &[f64]) -> Vec<f64> {
    let mut best = f64::NEG_INFINITY;
    raw.iter()
        .map(|&a| {
            best = best.max(a);
            best
        })
        .collect()
}

/// Jointly fine-tunes `net` on `train_data` and evaluates every exit on
/// `test_data`.
///
/// Deterministic: serial mini-batch descent driven entirely by
/// `cfg.seed`, so two runs with equal inputs are bit-identical.
pub fn joint_fine_tune(
    net: &mut MultiHeadNet,
    train_data: &Dataset,
    test_data: &Dataset,
    cfg: &JointTrainConfig,
) -> JointOutcome {
    let mut span = netcut_obs::span("train.joint_fit");
    span.field("epochs", cfg.epochs);
    span.field("exits", net.num_exits());
    let mut opt = Adam::new(cfg.lr);
    let mut head_losses = vec![0.0; net.num_exits()];
    for epoch in 0..cfg.epochs {
        let batches = train_data.epoch_batches(cfg.batch_size, cfg.seed + epoch as u64);
        let n = batches.len() as f32;
        let mut epoch_losses = vec![0.0f32; net.num_exits()];
        for idx in batches {
            let (x, y) = train_data.batch(&idx);
            let losses = net.joint_train_step(&x, &y, &cfg.head_weights, &mut opt);
            for (acc, l) in epoch_losses.iter_mut().zip(losses) {
                *acc += l;
            }
        }
        for (slot, total) in head_losses.iter_mut().zip(&epoch_losses) {
            *slot = total / n;
        }
        if netcut_obs::enabled() {
            netcut_obs::instant(
                "train.joint_epoch",
                &[
                    ("epoch", epoch.into()),
                    (
                        "deepest_loss",
                        (*head_losses.last().unwrap_or(&0.0) as f64).into(),
                    ),
                ],
            );
        }
    }
    let exit_accuracy = net.evaluate_exits(test_data);
    let calibrated_accuracy = calibrated_exit_curve(&exit_accuracy);
    span.field(
        "deepest_accuracy",
        *calibrated_accuracy.last().unwrap_or(&0.0),
    );
    JointOutcome {
        head_losses,
        exit_accuracy,
        calibrated_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{pretrain, snapshot};

    fn mini() -> MiniConfig {
        MiniConfig {
            conv_blocks: 3,
            width: 6,
            seed: 11,
        }
    }

    #[test]
    fn forward_produces_one_logit_set_per_exit() {
        let cfg = mini();
        let mut net = MultiHeadNet::build(&cfg, 5);
        let x = Tensor::zeros(&[2, IMAGE_CHANNELS, 12, 12]);
        let logits = net.forward_exits(&x, false);
        assert_eq!(logits.len(), cfg.conv_blocks);
        for l in &logits {
            assert_eq!(l.shape(), &[2, 5]);
        }
    }

    #[test]
    fn joint_training_reduces_every_heads_loss() {
        let cfg = mini();
        let (train_data, test_data) = Dataset::hands(200, 11).split(0.2);
        let mut net = MultiHeadNet::build(&cfg, 5);
        let short = JointTrainConfig {
            epochs: 1,
            ..JointTrainConfig::default()
        };
        let first = joint_fine_tune(&mut net, &train_data, &test_data, &short);
        let more = JointTrainConfig {
            epochs: 10,
            ..JointTrainConfig::default()
        };
        let later = joint_fine_tune(&mut net, &train_data, &test_data, &more);
        for (k, (a, b)) in first.head_losses.iter().zip(&later.head_losses).enumerate() {
            assert!(b < a, "head {k} loss {a} -> {b}");
        }
    }

    #[test]
    fn joint_fine_tune_is_bit_deterministic() {
        let cfg = mini();
        let (train_data, test_data) = Dataset::hands(150, 13).split(0.2);
        let run = || {
            let mut net = MultiHeadNet::build(&cfg, 5);
            joint_fine_tune(
                &mut net,
                &train_data,
                &test_data,
                &JointTrainConfig::default(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pretrained_backbone_transfers_into_every_segment() {
        let cfg = mini();
        let source = Dataset::objects(120, 21);
        let mut pre = pretrain(&cfg, &source, 3);
        let weights = snapshot(&mut pre);
        let mut net = MultiHeadNet::from_pretrained(&cfg, &weights, 5);
        for (b, segment) in net.segments.iter_mut().enumerate() {
            assert_eq!(segment.params_mut()[0].value, weights[2 * b]);
        }
    }

    #[test]
    fn calibrated_curve_is_monotone_and_tops_the_raw() {
        let raw = [0.6, 0.55, 0.7, 0.68];
        let cal = calibrated_exit_curve(&raw);
        assert_eq!(cal, vec![0.6, 0.6, 0.7, 0.7]);
        for pair in cal.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        let cfg = mini();
        let (train_data, test_data) = Dataset::hands(200, 11).split(0.2);
        let mut net = MultiHeadNet::build(&cfg, 5);
        let out = joint_fine_tune(
            &mut net,
            &train_data,
            &test_data,
            &JointTrainConfig::default(),
        );
        assert_eq!(out.calibrated_accuracy.len(), cfg.conv_blocks);
        for pair in out.calibrated_accuracy.windows(2) {
            assert!(pair[1] >= pair[0]);
        }
        assert_eq!(
            *out.calibrated_accuracy.last().unwrap(),
            out.exit_accuracy.iter().copied().fold(f64::MIN, f64::max)
        );
    }

    #[test]
    fn head_weights_bias_training_toward_weighted_exits() {
        // With all weight on the deepest head, the deepest loss must drop
        // markedly more than the (frozen-in-all-but-name) shallow one.
        let cfg = mini();
        let (train_data, test_data) = Dataset::hands(200, 17).split(0.2);
        let weighted = JointTrainConfig {
            epochs: 6,
            head_weights: vec![0.0, 0.0, 1.0],
            ..JointTrainConfig::default()
        };
        let mut net = MultiHeadNet::build(&cfg, 5);
        let start = joint_fine_tune(
            &mut net,
            &train_data,
            &test_data,
            &JointTrainConfig {
                epochs: 0,
                ..weighted.clone()
            },
        );
        let _ = start;
        let out = joint_fine_tune(&mut net, &train_data, &test_data, &weighted);
        let deep_drop = out.head_losses[0] - out.head_losses[2];
        assert!(
            out.head_losses[2] < out.head_losses[0],
            "deepest head (weight 1) should out-train the shallow head (weight 0): {:?} \
             (drop {deep_drop})",
            out.head_losses
        );
    }
}
