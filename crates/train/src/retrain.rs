//! The `Retrain(TRN)` step of Algorithm 1, abstracted so the exploration
//! code can run against the surrogate (paper-scale networks) or, in the
//! mini-scale demonstrations, against real gradient descent.

use crate::cost::TrainingCostModel;
use crate::surrogate::TransferModel;
use netcut_graph::Network;
use serde::{Deserialize, Serialize};

/// Result of retraining one TRN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedTrn {
    /// Network name (`family/cutN`).
    pub name: String,
    /// Deployed angular-similarity accuracy after fine-tuning.
    pub accuracy: f64,
    /// Wall-clock training cost charged, hours.
    pub train_hours: f64,
}

/// Anything that can fine-tune a TRN and report its deployed accuracy plus
/// the training time spent.
///
/// Retrainers are `Send + Sync` so the evaluation core can share one
/// instance across worker threads; implementations must be internally
/// thread-safe (the surrogate is plain data and trivially so).
pub trait Retrainer: Send + Sync {
    /// Fine-tunes `trn` and returns its evaluation.
    fn retrain(&self, trn: &Network) -> TrainedTrn;
}

/// The paper-scale retrainer: surrogate accuracy + cost-model hours.
///
/// # Example
///
/// ```
/// use netcut_graph::{zoo, HeadSpec};
/// use netcut_train::{Retrainer, SurrogateRetrainer};
///
/// let retrainer = SurrogateRetrainer::paper();
/// let trn = zoo::mobilenet_v1(0.5).cut_blocks(1)?.with_head(&HeadSpec::default());
/// let trained = retrainer.retrain(&trn);
/// assert!(trained.accuracy > 0.7);
/// assert!(trained.train_hours > 0.0);
/// # Ok::<(), netcut_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SurrogateRetrainer {
    accuracy_model: TransferModel,
    cost_model: TrainingCostModel,
}

impl SurrogateRetrainer {
    /// The configuration used for all paper-scale experiments.
    pub fn paper() -> Self {
        SurrogateRetrainer {
            accuracy_model: TransferModel::paper(),
            cost_model: TrainingCostModel::paper(),
        }
    }

    /// Builds a retrainer from explicit models.
    pub fn new(accuracy_model: TransferModel, cost_model: TrainingCostModel) -> Self {
        SurrogateRetrainer {
            accuracy_model,
            cost_model,
        }
    }

    /// The underlying accuracy surrogate.
    pub fn accuracy_model(&self) -> &TransferModel {
        &self.accuracy_model
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &TrainingCostModel {
        &self.cost_model
    }
}

impl Retrainer for SurrogateRetrainer {
    fn retrain(&self, trn: &Network) -> TrainedTrn {
        let mut span = netcut_obs::span("train.retrain");
        if span.is_recording() {
            span.field("candidate", trn.name());
        }
        let trained = TrainedTrn {
            name: trn.name().to_owned(),
            accuracy: self.accuracy_model.accuracy(trn),
            train_hours: self.cost_model.train_hours(trn),
        };
        netcut_obs::counter_add("train.retrains", 1);
        netcut_obs::observe("train.retrain_hours", trained.train_hours);
        span.field("accuracy", trained.accuracy);
        span.field("train_hours", trained.train_hours);
        trained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcut_graph::{zoo, HeadSpec};

    #[test]
    fn retrain_reports_name_accuracy_hours() {
        let r = SurrogateRetrainer::paper();
        let trn = zoo::resnet50()
            .cut_blocks(3)
            .unwrap()
            .with_head(&HeadSpec::default());
        let t = r.retrain(&trn);
        assert_eq!(t.name, "resnet50/cut3");
        assert!(t.accuracy > 0.5);
        assert!(t.train_hours > 0.1);
    }

    #[test]
    fn retraining_is_reproducible() {
        let r = SurrogateRetrainer::paper();
        let trn = zoo::densenet121()
            .cut_blocks(10)
            .unwrap()
            .with_head(&HeadSpec::default());
        assert_eq!(r.retrain(&trn), r.retrain(&trn));
    }
}
