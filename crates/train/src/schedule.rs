//! Learning-rate schedules and early stopping for the fine-tuning engine —
//! quality-of-life tooling around the paper's fixed two-phase recipe.

use serde::{Deserialize, Serialize};

/// Epoch-indexed learning-rate policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Fixed learning rate (the paper's choice within each phase).
    Constant,
    /// Multiply by `factor` every `every` epochs.
    Step {
        /// Epochs between drops.
        every: usize,
        /// Multiplicative factor per drop (usually < 1).
        factor: f32,
    },
    /// Cosine annealing from the base rate down to `min_lr` over
    /// `total_epochs`.
    Cosine {
        /// Epochs over which to anneal.
        total_epochs: usize,
        /// Terminal learning rate.
        min_lr: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `epoch` (0-based) given the base rate.
    pub fn lr_at(&self, epoch: usize, base: f32) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::Step { every, factor } => {
                let drops = epoch.checked_div(every).unwrap_or(0);
                base * factor.powi(drops as i32)
            }
            LrSchedule::Cosine {
                total_epochs,
                min_lr,
            } => {
                if total_epochs == 0 {
                    return base;
                }
                let t = (epoch.min(total_epochs) as f32) / total_epochs as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                min_lr + (base - min_lr) * cos
            }
        }
    }
}

/// Early stopping on a monitored loss: stop after `patience` epochs
/// without an improvement of at least `min_delta`.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    patience: usize,
    min_delta: f32,
    best: f32,
    stale: usize,
}

impl EarlyStopping {
    /// New monitor with the given patience and improvement threshold.
    pub fn new(patience: usize, min_delta: f32) -> Self {
        EarlyStopping {
            patience,
            min_delta,
            best: f32::INFINITY,
            stale: 0,
        }
    }

    /// Records an epoch's loss; returns `true` when training should stop.
    pub fn should_stop(&mut self, loss: f32) -> bool {
        if loss < self.best - self.min_delta {
            self.best = loss;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale > self.patience
    }

    /// The best loss observed so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant;
        assert_eq!(s.lr_at(0, 1e-3), 1e-3);
        assert_eq!(s.lr_at(100, 1e-3), 1e-3);
    }

    #[test]
    fn step_drops_at_boundaries() {
        let s = LrSchedule::Step {
            every: 10,
            factor: 0.1,
        };
        assert_eq!(s.lr_at(9, 1.0), 1.0);
        assert!((s.lr_at(10, 1.0) - 0.1).abs() < 1e-9);
        assert!((s.lr_at(25, 1.0) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn cosine_anneals_monotonically() {
        let s = LrSchedule::Cosine {
            total_epochs: 20,
            min_lr: 1e-5,
        };
        let mut prev = f32::INFINITY;
        for e in 0..=20 {
            let lr = s.lr_at(e, 1e-3);
            assert!(lr <= prev + 1e-9);
            prev = lr;
        }
        assert!((s.lr_at(0, 1e-3) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(20, 1e-3) - 1e-5).abs() < 1e-7);
        // Past the horizon the rate stays at the floor.
        assert!((s.lr_at(50, 1e-3) - 1e-5).abs() < 1e-7);
    }

    #[test]
    fn early_stopping_waits_out_patience() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.should_stop(1.0));
        assert!(!es.should_stop(0.9)); // improvement resets
        assert!(!es.should_stop(0.95)); // stale 1
        assert!(!es.should_stop(0.95)); // stale 2
        assert!(es.should_stop(0.95)); // stale 3 > patience
        assert_eq!(es.best(), 0.9);
    }

    #[test]
    fn min_delta_filters_noise_improvements() {
        let mut es = EarlyStopping::new(1, 0.1);
        assert!(!es.should_stop(1.0));
        assert!(!es.should_stop(0.95)); // within delta: stale
        assert!(es.should_stop(0.93)); // still within delta: stop
    }
}
