//! Calibrated transfer-accuracy surrogate.
//!
//! Accuracy here is the robotic-hand application's metric: mean angular
//! similarity between the predicted and labelled grasp distributions after
//! fine-tuning and INT8 deployment. The surrogate maps a TRN to accuracy
//! through its *structure* (fraction of source backbone layers removed),
//! with per-family retention curves calibrated to the paper's Fig. 5:
//!
//! * DenseNet-121 / InceptionV3: negligible loss past 100 removed layers,
//!   smooth drop afterwards;
//! * ResNet-50: gentle degradation (its TRNs "fill the gap" in Fig. 6);
//! * MobileNetV1/V2: rapid degradation — MobileNet features are the least
//!   transferable, MobileNetV2 worst of all (§IV-B-1).

use netcut_graph::Network;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Transfer behaviour of one source-architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferProfile {
    /// Deployed (post-INT8) angular-similarity accuracy of the *uncut*
    /// network after full fine-tuning.
    pub base_accuracy: f64,
    /// Coefficient of the removal penalty `c · f^p`.
    pub drop_coeff: f64,
    /// Exponent of the removal penalty (higher = flatter plateau).
    pub drop_exponent: f64,
    /// Weighted backbone layer count of the uncut source network.
    pub source_layers: usize,
}

impl TransferProfile {
    /// Accuracy after removing the given fraction `f ∈ [0, 1]` of backbone
    /// layers (before noise).
    pub fn accuracy_at(&self, fraction_removed: f64) -> f64 {
        let f = fraction_removed.clamp(0.0, 1.0);
        (self.base_accuracy - self.drop_coeff * f.powf(self.drop_exponent)).max(0.2)
    }
}

/// The surrogate accuracy model over all known families.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone)]
pub struct TransferModel {
    profiles: HashMap<String, TransferProfile>,
    noise_sigma: f64,
    seed: u64,
}

impl TransferModel {
    /// The calibration used throughout the reproduction, matching the
    /// paper's seven networks.
    ///
    /// Base accuracies follow Fig. 1 (MobileNetV1 0.5 at 0.81 under the
    /// 0.9 ms deadline); MobileNetV2 carries the per-tensor INT8
    /// quantization penalty of Krishnamoorthi 2018 (the paper's \[20\]).
    pub fn paper() -> Self {
        let nets = netcut_graph::zoo::extended_networks();
        let layer_count = |name: &str| -> usize {
            nets.iter()
                .find(|n| n.name() == name)
                .map(netcut_graph::Network::weighted_layer_count)
                .expect("zoo network exists")
        };
        let mut profiles = HashMap::new();
        let mut add = |name: &str, base: f64, c: f64, p: f64| {
            profiles.insert(
                name.to_owned(),
                TransferProfile {
                    base_accuracy: base,
                    drop_coeff: c,
                    drop_exponent: p,
                    source_layers: layer_count(name),
                },
            );
        };
        add("mobilenet_v1_0.25", 0.723, 0.30, 1.6);
        add("mobilenet_v1_0.50", 0.810, 0.25, 1.5);
        add("mobilenet_v2_1.00", 0.800, 0.48, 1.4);
        add("mobilenet_v2_1.40", 0.845, 0.48, 1.4);
        add("inception_v3", 0.875, 0.38, 7.0);
        add("resnet50", 0.870, 0.32, 5.0);
        add("densenet121", 0.880, 0.38, 7.0);
        // Extended-zoo families (not in the paper): VGG transfers well but
        // is shallow per block; AlexNet's few layers are all fairly
        // general; SqueezeNet behaves like the compact MobileNets.
        add("vgg16", 0.855, 0.40, 3.0);
        add("alexnet", 0.790, 0.35, 2.0);
        add("squeezenet", 0.775, 0.40, 1.6);
        TransferModel {
            profiles,
            noise_sigma: 0.004,
            seed: 0x5eed,
        }
    }

    /// Builds a model from explicit profiles (for tests and ablations).
    pub fn from_profiles(
        profiles: HashMap<String, TransferProfile>,
        noise_sigma: f64,
        seed: u64,
    ) -> Self {
        TransferModel {
            profiles,
            noise_sigma,
            seed,
        }
    }

    /// The profile for a family, if known.
    pub fn profile(&self, family: &str) -> Option<&TransferProfile> {
        self.profiles.get(family)
    }

    /// Known family names.
    pub fn families(&self) -> impl Iterator<Item = &str> {
        self.profiles.keys().map(String::as_str)
    }

    /// Fraction of the source backbone's weighted layers that `trn` has
    /// removed (0 for the uncut network).
    ///
    /// # Panics
    ///
    /// Panics if the TRN's family (its [`Network::base_name`]) is unknown.
    pub fn fraction_removed(&self, trn: &Network) -> f64 {
        let profile = self
            .profiles
            .get(trn.base_name())
            .unwrap_or_else(|| panic!("unknown family `{}`", trn.base_name()));
        let kept = trn.weighted_layer_count();
        let total = profile.source_layers;
        (1.0 - kept as f64 / total as f64).clamp(0.0, 1.0)
    }

    /// Deployed accuracy of a fine-tuned TRN (deterministic per network
    /// name: retraining the same TRN twice gives the same result).
    ///
    /// # Panics
    ///
    /// Panics if the TRN's family is unknown.
    pub fn accuracy(&self, trn: &Network) -> f64 {
        let profile = self.profiles[trn.base_name()];
        let f = self.fraction_removed(trn);
        let noiseless = profile.accuracy_at(f);
        (noiseless + self.noise(trn.name())).clamp(0.2, 0.98)
    }

    /// Deterministic pseudo-Gaussian retraining noise derived from the
    /// network name.
    fn noise(&self, name: &str) -> f64 {
        let mut h = self.seed ^ 0xcbf29ce484222325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        // Two xorshift rounds, then map to approx N(0, sigma).
        let mut x = h | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let u1 = (x >> 11) as f64 / (1u64 << 53) as f64;
        let mut y = x.wrapping_mul(0x2545F4914F6CDD1D);
        y ^= y >> 33;
        let u2 = (y >> 11) as f64 / (1u64 << 53) as f64;
        let z = (-2.0 * u1.max(1e-12).ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        z * self.noise_sigma
    }
}

/// Accuracy surrogate for *width pruning* of a MobileNetV1-style chain —
/// the search space of NetAdapt-like filter pruning (the paper's §II
/// comparison point). Each block has a sensitivity; narrowing block `i` to
/// relative width `w` costs `sensitivity[i] · (1 − w)^1.5`.
#[derive(Debug, Clone)]
pub struct WidthPruningModel {
    base_accuracy: f64,
    sensitivities: Vec<f64>,
}

impl WidthPruningModel {
    /// Calibrated for MobileNetV1 (0.5): halving every block's width must
    /// land at MobileNetV1 (0.25)'s accuracy (0.723), with early blocks
    /// more sensitive than late ones (matching the transferability
    /// gradient).
    pub fn mobilenet_v1_05() -> Self {
        let blocks = 13;
        // Linear ramp, early > late, normalized so Σ s_i · 0.5^1.5 = 0.087.
        let raw: Vec<f64> = (0..blocks)
            .map(|i| 2.0 - 1.5 * i as f64 / (blocks - 1) as f64)
            .collect();
        let raw_sum: f64 = raw.iter().sum();
        let target = (0.810 - 0.723) / 0.5f64.powf(1.5);
        let sensitivities = raw.iter().map(|r| r / raw_sum * target).collect();
        WidthPruningModel {
            base_accuracy: 0.810,
            sensitivities,
        }
    }

    /// Number of prunable blocks.
    pub fn blocks(&self) -> usize {
        self.sensitivities.len()
    }

    /// Accuracy after fine-tuning a network whose block `i` keeps relative
    /// width `widths[i]` (1.0 = unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `widths` does not match the block count.
    pub fn accuracy(&self, widths: &[f64]) -> f64 {
        assert_eq!(widths.len(), self.sensitivities.len(), "width arity");
        let drop: f64 = widths
            .iter()
            .zip(&self.sensitivities)
            .map(|(&w, &s)| s * (1.0 - w.clamp(0.0, 1.0)).powf(1.5))
            .sum();
        (self.base_accuracy - drop).max(0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcut_graph::{zoo, HeadSpec};

    fn model() -> TransferModel {
        TransferModel::paper()
    }

    #[test]
    fn width_model_interpolates_the_anchors() {
        let m = WidthPruningModel::mobilenet_v1_05();
        assert!((m.accuracy(&[1.0; 13]) - 0.810).abs() < 1e-9);
        assert!((m.accuracy(&[0.5; 13]) - 0.723).abs() < 1e-9);
    }

    #[test]
    fn width_model_prefers_pruning_late_blocks() {
        let m = WidthPruningModel::mobilenet_v1_05();
        let mut early = [1.0; 13];
        early[0] = 0.5;
        let mut late = [1.0; 13];
        late[12] = 0.5;
        assert!(m.accuracy(&late) > m.accuracy(&early));
    }

    #[test]
    fn base_accuracies_match_figure_1() {
        let m = model();
        for net in zoo::paper_networks() {
            let full = net.cut_blocks(0).unwrap().with_head(&HeadSpec::default());
            let acc = m.accuracy(&full);
            let base = m.profile(net.name()).unwrap().base_accuracy;
            assert!(
                (acc - base).abs() < 0.02,
                "{}: {acc} vs base {base}",
                net.name()
            );
        }
        // MobileNetV1 0.5 is the paper's deadline-meeting selection at 0.81.
        assert!((m.profile("mobilenet_v1_0.50").unwrap().base_accuracy - 0.81).abs() < 1e-9);
    }

    #[test]
    fn accuracy_is_deterministic() {
        let m = model();
        let net = zoo::resnet50();
        let trn = net.cut_blocks(4).unwrap().with_head(&HeadSpec::default());
        assert_eq!(m.accuracy(&trn), m.accuracy(&trn));
    }

    #[test]
    fn deeper_cuts_lose_more_accuracy() {
        let m = model();
        let net = zoo::mobilenet_v2(1.0);
        let head = HeadSpec::default();
        let shallow = m.accuracy(&net.cut_blocks(2).unwrap().with_head(&head));
        let deep = m.accuracy(&net.cut_blocks(12).unwrap().with_head(&head));
        assert!(shallow > deep + 0.05, "shallow {shallow} deep {deep}");
    }

    #[test]
    fn densenet_plateaus_past_100_removed_layers() {
        // Fig. 5: DenseNet loses almost nothing past 100 removed layers.
        let m = model();
        let net = zoo::densenet121();
        let head = HeadSpec::default();
        let full = m.accuracy(&net.cut_blocks(0).unwrap().with_head(&head));
        // 26 dense layers removed = 52 convs plus the transition convs.
        let trn = net.cut_blocks(26).unwrap().with_head(&head);
        let removed = net.weighted_layer_count() - trn.weighted_layer_count();
        assert!(removed > 50, "removed = {removed}");
        let cut = m.accuracy(&trn);
        assert!(full - cut < 0.03, "densenet dropped {:.3}", full - cut);
    }

    #[test]
    fn mobilenets_are_fragile() {
        // Fig. 5: MobileNet accuracy drops fast; at 40 % removal the loss
        // must already be substantial, unlike ResNet's.
        let m = model();
        let mob = m.profile("mobilenet_v2_1.00").unwrap();
        let res = m.profile("resnet50").unwrap();
        assert!(mob.accuracy_at(0.4) < mob.base_accuracy - 0.08);
        assert!(res.accuracy_at(0.4) > res.base_accuracy - 0.02);
    }

    #[test]
    fn mobilenet_v2_more_affected_than_resnet() {
        // §IV-B-1: ResNet and MobileNetV2 have similar depth, but V2
        // suffers more from removal.
        let m = model();
        let v2 = m.profile("mobilenet_v2_1.00").unwrap();
        let res = m.profile("resnet50").unwrap();
        for f in [0.2, 0.4, 0.6, 0.8] {
            let v2_loss = v2.base_accuracy - v2.accuracy_at(f);
            let res_loss = res.base_accuracy - res.accuracy_at(f);
            assert!(v2_loss > res_loss, "at f={f}: v2 {v2_loss} res {res_loss}");
        }
    }

    #[test]
    fn fraction_removed_bounds() {
        let m = model();
        let net = zoo::inception_v3();
        let head = HeadSpec::default();
        let f0 = m.fraction_removed(&net.cut_blocks(0).unwrap().with_head(&head));
        assert!(f0.abs() < 1e-9);
        let f_deep = m.fraction_removed(&net.cut_blocks(10).unwrap().with_head(&head));
        assert!(f_deep > 0.7 && f_deep < 1.0);
    }

    #[test]
    #[should_panic(expected = "unknown family")]
    fn unknown_family_panics() {
        use netcut_graph::{NetworkBuilder, Padding, Shape};
        let mut b = NetworkBuilder::new("mystery", Shape::map(3, 8, 8));
        let x = b.input();
        let c = b.conv(x, 4, 3, 1, Padding::Same, "c");
        let net = b.finish(c).unwrap();
        model().fraction_removed(&net);
    }
}
