//! Workspace determinism lint: a source-scanning pass over the virtual-time
//! crates (`crates/serve`, `crates/obs`, `crates/sim`) that fails on
//! forbidden nondeterminism.
//!
//! The serving stack's core contract is bit-identical summaries across
//! `--jobs` settings and seeds — which only holds while the hot path stays
//! on integer microseconds, ordered collections, and virtual time. This
//! lint extends the precedent of `tests/obs_metrics_registry.rs` (a textual
//! scan with a structural floor) to three nondeterminism classes:
//!
//! * **`wall-clock`** — `Instant::now` / `SystemTime`: wall time leaking
//!   into simulation state.
//! * **`unordered-collection`** — `HashMap` / `HashSet`: iteration order
//!   varies run to run, which poisons any summary or timeline built from
//!   it. The deterministic crates use `BTreeMap`/`BTreeSet`.
//! * **`float-us`** — a float type on the same line as a `_us` binding:
//!   float accumulation in integer-microsecond code rounds differently
//!   across optimization levels and accumulation orders.
//!
//! Audited exceptions live in an allowlist file at the workspace root
//! ([`ALLOWLIST_FILE`]), one `path pattern — justification` entry per line.
//! Entries are matched per (file, pattern) and must carry a justification;
//! a stale entry (matching nothing) fails the lint, so the list can only
//! shrink once an exception is gone.
//!
//! Trailing `#[cfg(test)]` modules are skipped: every file in the scanned
//! crates keeps its tests in one trailing module (the scan stops at the
//! first `#[cfg(test)]` line), and test-only nondeterminism cannot reach a
//! summary.

use netcut_obs as obs;
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Crate source roots the lint walks, relative to the workspace root.
pub const SCANNED_ROOTS: &[&str] = &["crates/serve/src", "crates/obs/src", "crates/sim/src"];

/// Allowlist file name, resolved against the workspace root.
pub const ALLOWLIST_FILE: &str = "detlint_allow.txt";

/// The nondeterminism classes the lint recognizes.
pub const PATTERNS: &[&str] = &["wall-clock", "unordered-collection", "float-us"];

/// One line that matched a forbidden pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which pattern matched (one of [`PATTERNS`]).
    pub pattern: &'static str,
    /// The offending line, trimmed.
    pub snippet: String,
}

/// One audited exception from the allowlist file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Path relative to the workspace root.
    pub file: String,
    /// The pattern this entry excuses.
    pub pattern: String,
    /// Why the exception is sound.
    pub justification: String,
}

/// The result of a workspace scan.
#[derive(Debug, Clone, Default)]
pub struct ScanOutcome {
    /// Findings *not* covered by the allowlist — any entry here fails the
    /// lint.
    pub findings: Vec<Finding>,
    /// Findings excused by an allowlist entry.
    pub allowed: Vec<Finding>,
    /// Allowlist entries that matched nothing — stale entries also fail
    /// the lint.
    pub stale: Vec<AllowEntry>,
    /// Source files walked.
    pub files_scanned: usize,
}

impl ScanOutcome {
    /// `true` when the workspace is clean: no uncovered finding and no
    /// stale allowlist entry.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }

    /// Human rendering, one line per finding plus a verdict line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(
                out,
                "detlint: {}:{} [{}] {}",
                f.file, f.line, f.pattern, f.snippet
            );
        }
        for e in &self.stale {
            let _ = writeln!(
                out,
                "detlint: stale allowlist entry `{} {}` matches nothing",
                e.file, e.pattern
            );
        }
        let _ = writeln!(
            out,
            "detlint: {} file(s), {} finding(s), {} allowed, {} stale",
            self.files_scanned,
            self.findings.len(),
            self.allowed.len(),
            self.stale.len()
        );
        out
    }

    /// Schema-v1 JSON-lines rendering on the `netcut-obs` event envelope:
    /// one `verify.detlint` instant per uncovered finding or stale entry,
    /// then a `verify.detlint_summary` with the counts.
    pub fn to_json_lines(&self) -> String {
        let ts_us = obs::now_us();
        let mut out = String::new();
        let instant = |name: &str, fields: Vec<(&'static str, obs::FieldValue)>| obs::Event {
            ts_us,
            kind: obs::EventKind::Instant,
            name: name.to_owned(),
            span_id: 0,
            parent_id: 0,
            dur_us: 0,
            fields,
        };
        for f in &self.findings {
            let event = instant(
                "verify.detlint",
                vec![
                    ("file", obs::FieldValue::from(f.file.clone())),
                    ("line", obs::FieldValue::from(f.line)),
                    ("pattern", obs::FieldValue::from(f.pattern)),
                    ("snippet", obs::FieldValue::from(f.snippet.clone())),
                ],
            );
            out.push_str(&event.to_json());
            out.push('\n');
        }
        for e in &self.stale {
            let event = instant(
                "verify.detlint",
                vec![
                    ("file", obs::FieldValue::from(e.file.clone())),
                    ("pattern", obs::FieldValue::from(e.pattern.clone())),
                    ("stale", obs::FieldValue::from(true)),
                ],
            );
            out.push_str(&event.to_json());
            out.push('\n');
        }
        let summary = instant(
            "verify.detlint_summary",
            vec![
                ("files", obs::FieldValue::from(self.files_scanned)),
                ("findings", obs::FieldValue::from(self.findings.len())),
                ("allowed", obs::FieldValue::from(self.allowed.len())),
                ("stale", obs::FieldValue::from(self.stale.len())),
            ],
        );
        out.push_str(&summary.to_json());
        out.push('\n');
        out
    }
}

/// Classifies one source line, ignoring comment-only lines. Returns the
/// matching pattern name, if any.
fn classify(line: &str) -> Option<&'static str> {
    let code = line.trim_start();
    if code.starts_with("//") {
        return None;
    }
    if code.contains("Instant::now") || code.contains("SystemTime") {
        return Some("wall-clock");
    }
    if code.contains("HashMap") || code.contains("HashSet") {
        return Some("unordered-collection");
    }
    if code.contains("_us") && (code.contains("f64") || code.contains("f32")) {
        return Some("float-us");
    }
    None
}

/// Scans one file's text, stopping at the first `#[cfg(test)]` line (the
/// scanned crates keep tests in one trailing module).
pub fn scan_source(rel_path: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        if let Some(pattern) = classify(line) {
            findings.push(Finding {
                file: rel_path.to_owned(),
                line: i + 1,
                pattern,
                snippet: line.trim().to_owned(),
            });
        }
    }
    findings
}

/// Parses the allowlist text. Blank lines and `#` comments are skipped;
/// every entry needs a known pattern and a non-empty justification.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        let (Some(file), Some(pattern)) = (parts.next(), parts.next()) else {
            return Err(format!(
                "allowlist line {}: expected `path pattern — justification`",
                i + 1
            ));
        };
        if !PATTERNS.contains(&pattern) {
            return Err(format!(
                "allowlist line {}: unknown pattern `{pattern}` (expected one of {PATTERNS:?})",
                i + 1
            ));
        }
        let justification = parts.next().map(str::trim).unwrap_or_default();
        if justification.is_empty() {
            return Err(format!(
                "allowlist line {}: entry `{file} {pattern}` has no justification",
                i + 1
            ));
        }
        entries.push(AllowEntry {
            file: file.to_owned(),
            pattern: pattern.to_owned(),
            justification: justification.to_owned(),
        });
    }
    Ok(entries)
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// report order.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_sources(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace: every source under [`SCANNED_ROOTS`], with
/// the allowlist at `root/`[`ALLOWLIST_FILE`] applied (a missing allowlist
/// file is an empty allowlist).
pub fn scan_workspace(root: &Path) -> Result<ScanOutcome, String> {
    let _span = obs::span("verify.detlint");
    let allow_path = root.join(ALLOWLIST_FILE);
    let entries = match fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        Err(_) => Vec::new(),
    };

    let mut outcome = ScanOutcome::default();
    let mut used = vec![false; entries.len()];
    for crate_root in SCANNED_ROOTS {
        let dir = root.join(crate_root);
        let mut files = Vec::new();
        rust_sources(&dir, &mut files)?;
        for path in files {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            outcome.files_scanned += 1;
            for finding in scan_source(&rel, &text) {
                let covered = entries
                    .iter()
                    .position(|e| e.file == finding.file && e.pattern == finding.pattern);
                match covered {
                    Some(i) => {
                        used[i] = true;
                        outcome.allowed.push(finding);
                    }
                    None => outcome.findings.push(finding),
                }
            }
        }
    }
    for (i, entry) in entries.iter().enumerate() {
        if !used[i] {
            outcome.stale.push(entry.clone());
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_each_pattern() {
        assert_eq!(classify("    let t = Instant::now();"), Some("wall-clock"));
        assert_eq!(
            classify("let m: HashMap<u64, u64> = HashMap::new();"),
            Some("unordered-collection")
        );
        assert_eq!(
            classify("let latency_us = x as f64 * 2.0;"),
            Some("float-us")
        );
        assert_eq!(classify("let t_us = 5u64;"), None);
        assert_eq!(classify("// HashMap in a comment is fine"), None);
    }

    #[test]
    fn scan_stops_at_the_test_module() {
        let text = "fn a() {}\n#[cfg(test)]\nmod tests { use std::collections::HashMap; }\n";
        assert!(scan_source("x.rs", text).is_empty());
    }

    #[test]
    fn allowlist_requires_a_justification() {
        assert!(parse_allowlist("crates/obs/src/lib.rs wall-clock").is_err());
        assert!(parse_allowlist("crates/obs/src/lib.rs wall-clock — trace epoch").is_ok());
        assert!(parse_allowlist("a.rs no-such-pattern — reason").is_err());
        assert!(parse_allowlist("# comment\n\n").unwrap().is_empty());
    }
}
