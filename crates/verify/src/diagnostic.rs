//! Structured diagnostics: stable codes, severities, graph spans, and the
//! rendered [`Report`] (human text plus schema-v1 JSON lines).

use netcut_graph::NodeId;
use netcut_obs as obs;
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: legitimate but worth knowing (e.g. a network with no
    /// convolutions has a zero filter-size feature).
    Note,
    /// Suspicious but not structurally fatal; strict mode promotes these to
    /// failures.
    Warning,
    /// The graph violates an invariant the pipeline relies on; downstream
    /// latency estimates and retraining would be garbage.
    Error,
}

impl Severity {
    /// Stable wire name (`"error"`, `"warning"`, `"note"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Stable diagnostic codes. Codes are append-only: a code is never reused
/// for a different rule, so log consumers and the mutation harness can rely
/// on them across versions. The full table lives in DESIGN.md §11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// NC001 — the network has no nodes.
    NC001,
    /// NC002 — broken topology: an input reference that does not strictly
    /// precede its consumer, a stored node id that disagrees with its
    /// position, or an out-of-range graph output.
    NC002,
    /// NC003 — shape-inference inconsistency along an edge: a stored shape
    /// that re-inference from the stored input shapes contradicts.
    NC003,
    /// NC004 — a node unreachable from the graph output (dangling).
    NC004,
    /// NC005 — a block that is empty or references nodes outside the graph.
    NC005,
    /// NC006 — block-boundary integrity: a non-contiguous block, a block
    /// output that is not a member, or an edge tapping a block's interior
    /// from outside (a cut through the block would sever it).
    NC006,
    /// NC007 — cutpoint monotonicity: block outputs not strictly increasing,
    /// a node owned by two blocks, or a block extending into the head.
    NC007,
    /// NC008 — head structure: the head boundary is out of range, the graph
    /// output is not a head node, the head has no weighted layer, or the
    /// output is not a class vector.
    NC008,
    /// NC009 — head-reattachment compatibility: the head's FC stack or
    /// class count does not match the expected [`netcut_graph::HeadSpec`].
    NC009,
    /// NC010 — stats coherence: aggregate FLOPs/params disagree with the
    /// per-layer recomputation, or a weighted layer has zero cost.
    NC010,
    /// NC011 — fingerprint instability: refingerprinting (or fingerprinting
    /// a clone) yields a different value.
    NC011,
    /// NC012 — estimator-feature sanity: a backbone statistic that feeds a
    /// zero (or NaN, after normalization) feature to the latency SVR.
    NC012,
    /// NC013 — exit-head structure: an exit whose node range is out of
    /// range or inverted, holds no weighted layer, whose output is not a
    /// class-probability vector, or whose class count disagrees with the
    /// other exits.
    NC013,
    /// NC014 — exit monotonicity: exit heads not stored shallowest-first
    /// (head starts strictly increasing), or the deepest exit's output is
    /// not the graph output.
    NC014,
    /// NC015 — one head per boundary: the exit table does not claim every
    /// block exactly once, or an exit's entry node does not consume its
    /// claimed block's output.
    NC015,
    /// NC016 — exit isolation: an exit range outside the head region,
    /// overlapping exit ranges, an exit node consumed from outside its exit
    /// (not a pure sink), or a backbone fingerprint that is unstable under
    /// exit-head attachment.
    NC016,
    /// SV001 — ladder order: exit-table rungs not strictly ascending in
    /// predicted latency (ties included — equal latencies must be deduped
    /// at build time), or a rung with zero predicted latency.
    SV001,
    /// SV002 — exit-table range: an empty ladder (no exit candidates
    /// survived the Pareto filter) or an exit pin that addresses a rung
    /// outside the table.
    SV002,
    /// SV003 — dominated rung: a rung that is both slower and no more
    /// accurate than an earlier rung, so the selector would never have a
    /// reason to pick it.
    SV003,
    /// SV004 — batch-curve shape: the curve roster does not carry exactly
    /// one curve per rung, a curve is empty, or `curve[0]` is not `PPM`
    /// (batch size 1 must cost exactly one request).
    SV004,
    /// SV005 — batch-curve scaling: a curve that decreases with batch size,
    /// or exceeds linear scaling (`curve[n-1] > n·PPM`) for batch ≥ 2 —
    /// batching that is slower than serial dispatch is never sound.
    SV005,
    /// SV006 — roster consistency: two shards serving the same device
    /// disagree on the ladder (rungs, curves, or pin), so routing between
    /// them would change latency predictions for identical hardware.
    SV006,
    /// SV007 — fault-window bounds: a fault window that is empty
    /// (`start >= end`) or extends past the scenario duration.
    SV007,
    /// SV008 — fault-window overlap: two windows of the same fault class
    /// overlap on one shard (or in the global plan), making the injected
    /// magnitude order-dependent.
    SV008,
    /// SV009 — fault partition: the per-shard fault plans do not partition
    /// the global timeline — a global window owned by zero or several
    /// shards, or a shard window absent from the global plan.
    SV009,
    /// SV010 — SLO budget: the miss budget is zero (every miss is an
    /// instant page) or exceeds `PPM` (not a rate).
    SV010,
    /// SV011 — SLO threshold order: the burn alert fires below the
    /// on-budget line (`burn_alert_ppm < PPM`), a zero drift threshold, or
    /// zero minimum sample/arrival floors (every empty window would alert).
    SV011,
    /// SV012 — alert reachability: a policy constant that makes one of the
    /// stable `OBS0xx` alert codes impossible to emit, e.g. a burn
    /// threshold above the burn rate of an all-miss window.
    SV012,
    /// SV013 — recalibration-config sanity: a closed-loop scenario whose
    /// controller can never act soundly — zero drift threshold, cooldown,
    /// watermark cadence, or sample floor, a refit window smaller than the
    /// sample floor it must satisfy, or a saturated drift threshold that
    /// makes OBS005 unreachable.
    SV013,
}

impl Code {
    /// Stable wire name, e.g. `"NC003"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::NC001 => "NC001",
            Code::NC002 => "NC002",
            Code::NC003 => "NC003",
            Code::NC004 => "NC004",
            Code::NC005 => "NC005",
            Code::NC006 => "NC006",
            Code::NC007 => "NC007",
            Code::NC008 => "NC008",
            Code::NC009 => "NC009",
            Code::NC010 => "NC010",
            Code::NC011 => "NC011",
            Code::NC012 => "NC012",
            Code::NC013 => "NC013",
            Code::NC014 => "NC014",
            Code::NC015 => "NC015",
            Code::NC016 => "NC016",
            Code::SV001 => "SV001",
            Code::SV002 => "SV002",
            Code::SV003 => "SV003",
            Code::SV004 => "SV004",
            Code::SV005 => "SV005",
            Code::SV006 => "SV006",
            Code::SV007 => "SV007",
            Code::SV008 => "SV008",
            Code::SV009 => "SV009",
            Code::SV010 => "SV010",
            Code::SV011 => "SV011",
            Code::SV012 => "SV012",
            Code::SV013 => "SV013",
        }
    }

    /// Short kebab-case rule name, e.g. `"shape-consistency"`.
    pub fn rule_name(self) -> &'static str {
        match self {
            Code::NC001 => "empty-network",
            Code::NC002 => "topological-order",
            Code::NC003 => "shape-consistency",
            Code::NC004 => "reachability",
            Code::NC005 => "block-structure",
            Code::NC006 => "block-boundary",
            Code::NC007 => "cutpoint-monotonicity",
            Code::NC008 => "head-structure",
            Code::NC009 => "head-spec",
            Code::NC010 => "stats-coherence",
            Code::NC011 => "fingerprint-stability",
            Code::NC012 => "estimator-features",
            Code::NC013 => "exit-head-structure",
            Code::NC014 => "exit-monotonicity",
            Code::NC015 => "one-head-per-boundary",
            Code::NC016 => "exit-isolation",
            Code::SV001 => "ladder-order",
            Code::SV002 => "exit-table-range",
            Code::SV003 => "dominated-rung",
            Code::SV004 => "batch-curve-shape",
            Code::SV005 => "batch-curve-scaling",
            Code::SV006 => "roster-consistency",
            Code::SV007 => "fault-window-bounds",
            Code::SV008 => "fault-window-overlap",
            Code::SV009 => "fault-partition",
            Code::SV010 => "slo-budget",
            Code::SV011 => "slo-threshold-order",
            Code::SV012 => "alert-reachability",
            Code::SV013 => "recalib-config",
        }
    }

    /// The fixed severity findings of this code carry.
    pub fn severity(self) -> Severity {
        match self {
            Code::NC004 => Severity::Warning,
            Code::NC012 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where in the graph a finding is anchored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSpan {
    /// The network as a whole.
    Network,
    /// One node.
    Node {
        /// The node's id.
        id: NodeId,
        /// The node's name at analysis time.
        name: String,
    },
    /// One edge (producer → consumer).
    Edge {
        /// Producer node.
        from: NodeId,
        /// Consumer node.
        to: NodeId,
        /// Consumer name at analysis time.
        to_name: String,
    },
    /// One backbone block.
    Block {
        /// Index into [`netcut_graph::Network::blocks`].
        index: usize,
        /// The block's name at analysis time.
        name: String,
    },
    /// The classification head (every node from `head_start` on).
    Head {
        /// First head node.
        start: NodeId,
    },
    /// One serve-plane shard (serve-plane rules only).
    Shard {
        /// The shard's roster name, e.g. `"shard0:jetson_xavier"`.
        name: String,
    },
    /// One exit-table rung of a shard's ladder.
    Rung {
        /// The owning shard's roster name.
        shard: String,
        /// Rung index, shallowest-first.
        index: usize,
    },
    /// One fault window of a shard's plan (`"global"` for the scenario-wide
    /// timeline before shard ownership is assigned).
    Fault {
        /// The owning shard's roster name, or `"global"`.
        shard: String,
        /// Window index in plan order.
        index: usize,
    },
    /// The scenario's SLO policy.
    SloPolicy,
    /// The scenario's closed-loop recalibration policy.
    RecalibPolicy,
}

impl fmt::Display for GraphSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphSpan::Network => write!(f, "network"),
            GraphSpan::Node { id, name } => write!(f, "node {id} `{name}`"),
            GraphSpan::Edge { from, to, to_name } => {
                write!(f, "edge {from} -> {to} `{to_name}`")
            }
            GraphSpan::Block { index, name } => write!(f, "block #{index} `{name}`"),
            GraphSpan::Head { start } => write!(f, "head (from {start})"),
            GraphSpan::Shard { name } => write!(f, "shard `{name}`"),
            GraphSpan::Rung { shard, index } => write!(f, "rung #{index} of `{shard}`"),
            GraphSpan::Fault { shard, index } => {
                write!(f, "fault window #{index} of `{shard}`")
            }
            GraphSpan::SloPolicy => write!(f, "slo policy"),
            GraphSpan::RecalibPolicy => write!(f, "recalib policy"),
        }
    }
}

/// One finding: a stable code, its severity, where it is, and what went
/// wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable rule code.
    pub code: Code,
    /// Severity, fixed per code.
    pub severity: Severity,
    /// Graph location.
    pub span: GraphSpan,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic; the severity comes from the code.
    pub fn new(code: Code, span: GraphSpan, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.span, self.message
        )
    }
}

impl std::error::Error for Diagnostic {}

/// Count of findings by severity; cheap to merge across many reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Summary {
    /// Error-severity findings.
    pub errors: usize,
    /// Warning-severity findings.
    pub warnings: usize,
    /// Note-severity findings.
    pub notes: usize,
}

impl Summary {
    /// Adds another summary's counts into this one.
    pub fn merge(&mut self, other: Summary) {
        self.errors += other.errors;
        self.warnings += other.warnings;
        self.notes += other.notes;
    }

    /// Total findings of any severity.
    pub fn total(&self) -> usize {
        self.errors + self.warnings + self.notes
    }
}

/// The analyzer's output for one network: every finding plus identity
/// (name, structural fingerprint) for report provenance.
#[derive(Debug, Clone)]
pub struct Report {
    pub(crate) network: String,
    pub(crate) fingerprint: u64,
    pub(crate) diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Name of the analyzed network.
    pub fn network(&self) -> &str {
        &self.network
    }

    /// Structural fingerprint of the analyzed network.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Every finding, in rule-registry order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when no Error-severity finding was produced.
    pub fn is_clean(&self) -> bool {
        self.summary().errors == 0
    }

    /// First Error-severity finding, if any.
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// Consumes the report, returning the first Error-severity finding.
    pub fn into_first_error(self) -> Option<Diagnostic> {
        self.diagnostics
            .into_iter()
            .find(|d| d.severity == Severity::Error)
    }

    /// Findings counted by severity.
    pub fn summary(&self) -> Summary {
        let mut s = Summary::default();
        for d in &self.diagnostics {
            match d.severity {
                Severity::Error => s.errors += 1,
                Severity::Warning => s.warnings += 1,
                Severity::Note => s.notes += 1,
            }
        }
        s
    }

    /// Multi-line human rendering: one line per finding plus a trailing
    /// verdict line. Clean reports render as a single `ok` line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{}: {d}", self.network);
        }
        let s = self.summary();
        if s.total() == 0 {
            let _ = writeln!(out, "{}: ok", self.network);
        } else {
            let _ = writeln!(
                out,
                "{}: {} error(s), {} warning(s), {} note(s)",
                self.network, s.errors, s.warnings, s.notes
            );
        }
        out
    }

    /// Schema-v1 JSON-lines rendering, reusing the `netcut-obs` event
    /// envelope: one `verify.diagnostic` instant event per finding, then a
    /// `verify.summary` event with counts by severity, each on its own
    /// line. Consumers can mix these lines into a `--trace-out` stream.
    pub fn to_json_lines(&self) -> String {
        let ts_us = obs::now_us();
        let mut out = String::new();
        for d in &self.diagnostics {
            let event = obs::Event {
                ts_us,
                kind: obs::EventKind::Instant,
                name: "verify.diagnostic".to_owned(),
                span_id: 0,
                parent_id: 0,
                dur_us: 0,
                fields: vec![
                    ("network", obs::FieldValue::from(self.network.clone())),
                    ("code", obs::FieldValue::from(d.code.as_str())),
                    ("severity", obs::FieldValue::from(d.severity.as_str())),
                    ("span", obs::FieldValue::from(d.span.to_string())),
                    ("message", obs::FieldValue::from(d.message.clone())),
                ],
            };
            out.push_str(&event.to_json());
            out.push('\n');
        }
        let s = self.summary();
        let summary = obs::Event {
            ts_us,
            kind: obs::EventKind::Instant,
            name: "verify.summary".to_owned(),
            span_id: 0,
            parent_id: 0,
            dur_us: 0,
            fields: vec![
                ("network", obs::FieldValue::from(self.network.clone())),
                ("fingerprint", obs::FieldValue::from(self.fingerprint)),
                ("errors", obs::FieldValue::from(s.errors)),
                ("warnings", obs::FieldValue::from(s.warnings)),
                ("notes", obs::FieldValue::from(s.notes)),
            ],
        };
        out.push_str(&summary.to_json());
        out.push('\n');
        out
    }
}
