//! Rule-based static analyzer for the `netcut-graph` IR.
//!
//! NetCut's correctness rests on every trimmed-and-reheaded network (TRN)
//! being structurally sound: a cut that severs a residual branch, a stored
//! shape that drifts from what the wiring implies, or a head whose class
//! count disagrees with the target task silently poisons every downstream
//! latency estimate and retraining run. This crate makes those invariants
//! explicit and machine-checkable.
//!
//! - [`Diagnostic`]: one finding — a stable `NC0xx` [`Code`], a fixed
//!   [`Severity`], a [`GraphSpan`] locating it, and a message.
//! - [`Rule`] / [`Analyzer`]: the registry of ~11 structural rules (shape
//!   consistency, reachability, block-boundary integrity, cutpoint
//!   monotonicity, head structure, stats coherence, fingerprint stability,
//!   estimator-feature sanity, …) producing a [`Report`].
//! - [`mutate`]: a harness of structured corruptions, each documented with
//!   the exact code the analyzer must produce — the negative test surface.
//! - [`validate`]: drop-in replacement for the old ad-hoc
//!   `Network::validate()`, returning the first Error-severity finding.
//!
//! Reports render as human-readable text ([`Report::render_text`]) and as
//! schema-v1 JSON lines reusing the `netcut-obs` event envelope
//! ([`Report::to_json_lines`]), so lint output can flow into the same trace
//! files as the rest of the pipeline.
//!
//! # Example
//!
//! ```
//! use netcut_graph::zoo;
//! use netcut_verify::{analyze, validate};
//!
//! let net = zoo::mobilenet_v1(0.25);
//! assert!(validate(&net).is_ok());
//! let report = analyze(&net.cut_blocks(3).unwrap());
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diagnostic;
pub mod mutate;
mod rules;

pub use diagnostic::{Code, Diagnostic, GraphSpan, Report, Severity, Summary};
pub use rules::{Analyzer, HeadSpecRule, Rule};

use netcut_graph::Network;

/// Runs the default rule registry over `net`.
pub fn analyze(net: &Network) -> Report {
    Analyzer::new().analyze(net)
}

/// Drop-in replacement for the retired `Network::validate()`: runs the
/// default rules and returns the first Error-severity finding, if any.
/// Warnings and notes do not fail validation.
///
/// # Errors
///
/// Returns the first [`Diagnostic`] with [`Severity::Error`].
pub fn validate(net: &Network) -> Result<(), Diagnostic> {
    match analyze(net).into_first_error() {
        Some(diag) => Err(diag),
        None => Ok(()),
    }
}
