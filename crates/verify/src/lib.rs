//! Two-plane static analyzer: the `netcut-graph` IR and the serve plane.
//!
//! NetCut's correctness rests on every trimmed-and-reheaded network (TRN)
//! being structurally sound: a cut that severs a residual branch, a stored
//! shape that drifts from what the wiring implies, or a head whose class
//! count disagrees with the target task silently poisons every downstream
//! latency estimate and retraining run. Since PR 4 the same holds one level
//! up: the serving stack commits offline to an exit ladder, batch-scaling
//! curves, a fault plan, and an SLO policy, and a broken one of *those*
//! poisons every dispatch decision. This crate makes both sets of
//! invariants explicit and machine-checkable.
//!
//! - [`Diagnostic`]: one finding — a stable [`Code`] (`NC0xx` for the
//!   graph plane, `SV0xx` for the serve plane), a fixed [`Severity`], a
//!   [`GraphSpan`] locating it, and a message.
//! - [`Rule`] / [`Analyzer`]: the registry of ~11 structural graph rules
//!   (shape consistency, reachability, block-boundary integrity, cutpoint
//!   monotonicity, head structure, stats coherence, fingerprint stability,
//!   estimator-feature sanity, …) producing a [`Report`].
//! - [`serve_plane`]: the SV rule registry over extracted serving
//!   artifacts — ladder soundness, batch-curve sanity, fault-plan
//!   well-formedness, SLO feasibility.
//! - [`detlint`]: a workspace determinism lint scanning the virtual-time
//!   crates for wall-clock reads, unordered collections, and float
//!   arithmetic in integer-µs code, with an audited allowlist.
//! - [`mutate`]: a harness of structured corruptions on both planes, each
//!   documented with the exact code the analyzer must produce — the
//!   negative test surface.
//! - [`validate`]: drop-in replacement for the old ad-hoc
//!   `Network::validate()`, returning the first Error-severity finding.
//!
//! Reports render as human-readable text ([`Report::render_text`]) and as
//! schema-v1 JSON lines reusing the `netcut-obs` event envelope
//! ([`Report::to_json_lines`]), so lint output can flow into the same trace
//! files as the rest of the pipeline.
//!
//! # Example
//!
//! ```
//! use netcut_graph::zoo;
//! use netcut_verify::{analyze, validate};
//!
//! let net = zoo::mobilenet_v1(0.25);
//! assert!(validate(&net).is_ok());
//! let report = analyze(&net.cut_blocks(3).unwrap());
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detlint;
mod diagnostic;
pub mod mutate;
mod rules;
pub mod serve_plane;

pub use diagnostic::{Code, Diagnostic, GraphSpan, Report, Severity, Summary};
pub use rules::{Analyzer, HeadSpecRule, Rule};
pub use serve_plane::{analyze_serve, ServeAnalyzer, ServeArtifact, ServeRule};

use netcut_graph::Network;

/// Runs the default rule registry over `net`.
pub fn analyze(net: &Network) -> Report {
    Analyzer::new().analyze(net)
}

/// Drop-in replacement for the retired `Network::validate()`: runs the
/// default rules and returns the first Error-severity finding, if any.
/// Warnings and notes do not fail validation.
///
/// # Errors
///
/// Returns the first [`Diagnostic`] with [`Severity::Error`].
pub fn validate(net: &Network) -> Result<(), Diagnostic> {
    match analyze(net).into_first_error() {
        Some(diag) => Err(diag),
        None => Ok(()),
    }
}
