//! Mutation harness: structured ways of breaking a valid network, each with
//! a documented diagnostic the analyzer must produce.
//!
//! This is the negative half of the analyzer's test surface: property tests
//! assert that builder/zoo networks are clean, and this module asserts that
//! each class of corruption is caught with its *specific* `NC0xx` code — a
//! verifier that flags everything as "invalid" would pass the positive tests
//! but fail these.

use crate::diagnostic::Code;
use netcut_graph::{infer_shape, Block, LayerKind, Network, Node, NodeId, Shape};

/// A structured corruption applied to a valid network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Drop one input of a residual `Add` whose producer has no other
    /// consumer, leaving a dangling sub-graph → NC004.
    DropEdge,
    /// Bump the stored channel count of a convolution's shape so it no
    /// longer matches re-inference → NC003.
    CorruptShape,
    /// Remove a block's output node from its member list, so the recorded
    /// cutpoint is no longer inside the block → NC006.
    SpliceBlockBoundary,
    /// Extend a block to also claim the first node of the next block,
    /// making the two overlap → NC007.
    OverlapBlocks,
    /// Grow the head's logits layer by one unit (shapes re-inferred, so the
    /// graph stays structurally consistent) → NC009 under an expected
    /// [`netcut_graph::HeadSpec`].
    MismatchHeadClasses,
    /// Rewire one input to point at the consumer itself, breaking
    /// topological order → NC002.
    ForwardEdge,
}

impl Mutation {
    /// Every mutation class, for exhaustive harness loops.
    pub fn all() -> [Mutation; 6] {
        [
            Mutation::DropEdge,
            Mutation::CorruptShape,
            Mutation::SpliceBlockBoundary,
            Mutation::OverlapBlocks,
            Mutation::MismatchHeadClasses,
            Mutation::ForwardEdge,
        ]
    }

    /// The diagnostic code the analyzer must produce for this mutation.
    pub fn expected_code(self) -> Code {
        match self {
            Mutation::DropEdge => Code::NC004,
            Mutation::CorruptShape => Code::NC003,
            Mutation::SpliceBlockBoundary => Code::NC006,
            Mutation::OverlapBlocks => Code::NC007,
            Mutation::MismatchHeadClasses => Code::NC009,
            Mutation::ForwardEdge => Code::NC002,
        }
    }
}

fn parts(net: &Network) -> (Vec<Node>, Vec<Shape>, Vec<Block>) {
    (
        net.nodes().to_vec(),
        net.shapes().to_vec(),
        net.blocks().to_vec(),
    )
}

fn rebuild(net: &Network, nodes: Vec<Node>, shapes: Vec<Shape>, blocks: Vec<Block>) -> Network {
    Network::from_parts(
        format!("{}~mutated", net.name()),
        net.input_shape(),
        nodes,
        shapes,
        net.output(),
        blocks,
        net.head_start(),
    )
}

/// Number of consumers of `id` within the node list (graph-output use not
/// counted).
fn consumer_count(nodes: &[Node], id: NodeId) -> usize {
    nodes
        .iter()
        .flat_map(Node::inputs)
        .filter(|&&inp| inp == id)
        .count()
}

/// Applies `mutation` to a copy of `net`, returning `None` when the network
/// has no site for it (e.g. [`Mutation::DropEdge`] on a network with no
/// residual connections). The result is crafted so the analyzer reports the
/// mutation's [`expected_code`](Mutation::expected_code) — see each variant
/// for which companion diagnostics are possible.
pub fn apply(net: &Network, mutation: Mutation) -> Option<Network> {
    match mutation {
        Mutation::DropEdge => {
            let (mut nodes, shapes, blocks) = parts(net);
            // Find an Add whose dropped input has exactly one consumer, so
            // removing the edge strands that producer's entire branch.
            let (pos, victim) = nodes.iter().enumerate().rev().find_map(|(i, n)| {
                if !matches!(n.kind(), LayerKind::Add) || n.inputs().len() < 2 {
                    return None;
                }
                n.inputs()
                    .iter()
                    .position(|&inp| consumer_count(&nodes, inp) == 1)
                    .map(|slot| (i, slot))
            })?;
            let node = &nodes[pos];
            let mut inputs = node.inputs().to_vec();
            inputs.remove(victim);
            nodes[pos] = Node::new(node.id(), node.name(), *node.kind(), inputs);
            // Note: the Add's shape still re-infers identically (all Add
            // inputs share a shape), so the only finding is the dangling
            // branch — NC004 exactly.
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::CorruptShape => {
            let (nodes, mut shapes, blocks) = parts(net);
            let pos = nodes.iter().position(|n| {
                matches!(n.kind(), LayerKind::Conv2d { .. }) && !net.is_head_node(n.id())
            })?;
            let Shape::Map { c, h, w } = shapes.get(pos).copied()? else {
                return None;
            };
            shapes[pos] = Shape::map(c + 1, h, w);
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::SpliceBlockBoundary => {
            let (nodes, shapes, mut blocks) = parts(net);
            let bi = blocks.iter().position(|b| b.nodes().len() >= 2)?;
            let block = &blocks[bi];
            let members: Vec<NodeId> = block
                .nodes()
                .iter()
                .copied()
                .filter(|&id| id != block.output())
                .collect();
            blocks[bi] = Block::new(block.name(), members, block.output());
            // The member list stays contiguous (the output is a block's last
            // node), so the sole finding is the output falling outside the
            // block — NC006 exactly.
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::OverlapBlocks => {
            let (nodes, shapes, mut blocks) = parts(net);
            if blocks.len() < 2 {
                return None;
            }
            let stolen = *blocks[1].nodes().first()?;
            let block = &blocks[0];
            let mut members = block.nodes().to_vec();
            members.push(stolen);
            // Blocks are adjacent in the zoo, so the grown list stays
            // contiguous and the only finding is dual ownership — NC007.
            blocks[0] = Block::new(block.name(), members, block.output());
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::MismatchHeadClasses => {
            let (mut nodes, _, blocks) = parts(net);
            let head = net.head_start()?;
            let pos = nodes
                .iter()
                .rposition(|n| n.id() >= head && matches!(n.kind(), LayerKind::Dense { .. }))?;
            let node = &nodes[pos];
            let LayerKind::Dense { units } = *node.kind() else {
                return None;
            };
            nodes[pos] = Node::new(
                node.id(),
                node.name(),
                LayerKind::Dense { units: units + 1 },
                node.inputs().to_vec(),
            );
            // Re-infer every shape so the graph remains structurally
            // consistent: the *only* thing wrong is the class count, which
            // just the head-spec rule (NC009) can see.
            let mut inferred: Vec<Shape> = Vec::with_capacity(nodes.len());
            for node in &nodes {
                let s = infer_shape(node, &inferred, net.input_shape()).ok()?;
                inferred.push(s);
            }
            Some(rebuild(net, nodes, inferred, blocks))
        }
        Mutation::ForwardEdge => {
            let (mut nodes, shapes, blocks) = parts(net);
            let pos = nodes.iter().rposition(|n| !n.inputs().is_empty())?;
            let node = &nodes[pos];
            let mut inputs = node.inputs().to_vec();
            inputs[0] = node.id();
            nodes[pos] = Node::new(node.id(), node.name(), *node.kind(), inputs);
            // The node's former producer may become unreachable, so NC004
            // can accompany NC002 — the harness asserts membership, not
            // exact equality, for this class.
            Some(rebuild(net, nodes, shapes, blocks))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use netcut_graph::zoo;

    #[test]
    fn drop_edge_needs_a_residual() {
        // MobileNetV1 has no Add nodes; the mutation must decline.
        assert!(apply(&zoo::mobilenet_v1(0.25), Mutation::DropEdge).is_none());
        assert!(apply(&zoo::resnet50(), Mutation::DropEdge).is_some());
    }

    #[test]
    fn corrupt_shape_is_caught_exactly() {
        let net = zoo::mobilenet_v1(0.25);
        let broken = apply(&net, Mutation::CorruptShape).unwrap();
        let report = Analyzer::new().analyze(&broken);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::NC003));
    }
}
