//! Mutation harness: structured ways of breaking a valid network, each with
//! a documented diagnostic the analyzer must produce.
//!
//! This is the negative half of the analyzer's test surface: property tests
//! assert that builder/zoo networks are clean, and this module asserts that
//! each class of corruption is caught with its *specific* `NC0xx` code — a
//! verifier that flags everything as "invalid" would pass the positive tests
//! but fail these.

use crate::diagnostic::Code;
use netcut_graph::{infer_shape, Block, ExitPoint, LayerKind, Network, Node, NodeId, Shape};

/// A structured corruption applied to a valid network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Drop one input of a residual `Add` whose producer has no other
    /// consumer, leaving a dangling sub-graph → NC004.
    DropEdge,
    /// Bump the stored channel count of a convolution's shape so it no
    /// longer matches re-inference → NC003.
    CorruptShape,
    /// Remove a block's output node from its member list, so the recorded
    /// cutpoint is no longer inside the block → NC006.
    SpliceBlockBoundary,
    /// Extend a block to also claim the first node of the next block,
    /// making the two overlap → NC007.
    OverlapBlocks,
    /// Grow the head's logits layer by one unit (shapes re-inferred, so the
    /// graph stays structurally consistent) → NC009 under an expected
    /// [`netcut_graph::HeadSpec`].
    MismatchHeadClasses,
    /// Rewire one input to point at the consumer itself, breaking
    /// topological order → NC002.
    ForwardEdge,
    /// Grow the logits layer of the *shallowest* exit head by one unit
    /// (shapes re-inferred), so its class count disagrees with the other
    /// exits → NC013. Requires a multi-exit network.
    MismatchExitClasses,
    /// Swap the first two entries of the exit table, so exits are no longer
    /// stored shallowest-first → NC014. Requires ≥ 2 exits.
    SwapExitOrder,
    /// Point the second exit's `block` at the first exit's boundary, so one
    /// boundary carries two heads and another none → NC015. Requires ≥ 2
    /// exits.
    DuplicateExitBoundary,
    /// Stretch the shallowest exit's range one node down into the backbone,
    /// so the exit is no longer isolated in the head region → NC016.
    /// Requires a multi-exit network.
    IntrudeExitRange,
}

impl Mutation {
    /// Every mutation class, for exhaustive harness loops.
    pub fn all() -> [Mutation; 10] {
        [
            Mutation::DropEdge,
            Mutation::CorruptShape,
            Mutation::SpliceBlockBoundary,
            Mutation::OverlapBlocks,
            Mutation::MismatchHeadClasses,
            Mutation::ForwardEdge,
            Mutation::MismatchExitClasses,
            Mutation::SwapExitOrder,
            Mutation::DuplicateExitBoundary,
            Mutation::IntrudeExitRange,
        ]
    }

    /// The diagnostic code the analyzer must produce for this mutation.
    pub fn expected_code(self) -> Code {
        match self {
            Mutation::DropEdge => Code::NC004,
            Mutation::CorruptShape => Code::NC003,
            Mutation::SpliceBlockBoundary => Code::NC006,
            Mutation::OverlapBlocks => Code::NC007,
            Mutation::MismatchHeadClasses => Code::NC009,
            Mutation::ForwardEdge => Code::NC002,
            Mutation::MismatchExitClasses => Code::NC013,
            Mutation::SwapExitOrder => Code::NC014,
            Mutation::DuplicateExitBoundary => Code::NC015,
            Mutation::IntrudeExitRange => Code::NC016,
        }
    }

    /// `true` for classes that corrupt the exit table and therefore need a
    /// multi-exit base network (see [`netcut_graph::Network::with_exit_heads`]).
    pub fn needs_exit_table(self) -> bool {
        matches!(
            self,
            Mutation::MismatchExitClasses
                | Mutation::SwapExitOrder
                | Mutation::DuplicateExitBoundary
                | Mutation::IntrudeExitRange
        )
    }
}

fn parts(net: &Network) -> (Vec<Node>, Vec<Shape>, Vec<Block>) {
    (
        net.nodes().to_vec(),
        net.shapes().to_vec(),
        net.blocks().to_vec(),
    )
}

fn rebuild(net: &Network, nodes: Vec<Node>, shapes: Vec<Shape>, blocks: Vec<Block>) -> Network {
    Network::from_parts(
        format!("{}~mutated", net.name()),
        net.input_shape(),
        nodes,
        shapes,
        net.output(),
        blocks,
        net.head_start(),
    )
    .with_exit_points(net.exits().to_vec())
}

/// Rebuilds with only the exit table replaced — the node-level structure of
/// the network stays byte-identical.
fn rebuild_exits(net: &Network, exits: Vec<ExitPoint>) -> Network {
    let (nodes, shapes, blocks) = parts(net);
    rebuild(net, nodes, shapes, blocks).with_exit_points(exits)
}

/// Number of consumers of `id` within the node list (graph-output use not
/// counted).
fn consumer_count(nodes: &[Node], id: NodeId) -> usize {
    nodes
        .iter()
        .flat_map(Node::inputs)
        .filter(|&&inp| inp == id)
        .count()
}

/// Applies `mutation` to a copy of `net`, returning `None` when the network
/// has no site for it (e.g. [`Mutation::DropEdge`] on a network with no
/// residual connections). The result is crafted so the analyzer reports the
/// mutation's [`expected_code`](Mutation::expected_code) — see each variant
/// for which companion diagnostics are possible.
pub fn apply(net: &Network, mutation: Mutation) -> Option<Network> {
    match mutation {
        Mutation::DropEdge => {
            let (mut nodes, shapes, blocks) = parts(net);
            // Find an Add whose dropped input has exactly one consumer, so
            // removing the edge strands that producer's entire branch.
            let (pos, victim) = nodes.iter().enumerate().rev().find_map(|(i, n)| {
                if !matches!(n.kind(), LayerKind::Add) || n.inputs().len() < 2 {
                    return None;
                }
                n.inputs()
                    .iter()
                    .position(|&inp| consumer_count(&nodes, inp) == 1)
                    .map(|slot| (i, slot))
            })?;
            let node = &nodes[pos];
            let mut inputs = node.inputs().to_vec();
            inputs.remove(victim);
            nodes[pos] = Node::new(node.id(), node.name(), *node.kind(), inputs);
            // Note: the Add's shape still re-infers identically (all Add
            // inputs share a shape), so the only finding is the dangling
            // branch — NC004 exactly.
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::CorruptShape => {
            let (nodes, mut shapes, blocks) = parts(net);
            let pos = nodes.iter().position(|n| {
                matches!(n.kind(), LayerKind::Conv2d { .. }) && !net.is_head_node(n.id())
            })?;
            let Shape::Map { c, h, w } = shapes.get(pos).copied()? else {
                return None;
            };
            shapes[pos] = Shape::map(c + 1, h, w);
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::SpliceBlockBoundary => {
            let (nodes, shapes, mut blocks) = parts(net);
            let bi = blocks.iter().position(|b| b.nodes().len() >= 2)?;
            let block = &blocks[bi];
            let members: Vec<NodeId> = block
                .nodes()
                .iter()
                .copied()
                .filter(|&id| id != block.output())
                .collect();
            blocks[bi] = Block::new(block.name(), members, block.output());
            // The member list stays contiguous (the output is a block's last
            // node), so the sole finding is the output falling outside the
            // block — NC006 exactly.
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::OverlapBlocks => {
            let (nodes, shapes, mut blocks) = parts(net);
            if blocks.len() < 2 {
                return None;
            }
            let stolen = *blocks[1].nodes().first()?;
            let block = &blocks[0];
            let mut members = block.nodes().to_vec();
            members.push(stolen);
            // Blocks are adjacent in the zoo, so the grown list stays
            // contiguous and the only finding is dual ownership — NC007.
            blocks[0] = Block::new(block.name(), members, block.output());
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::MismatchHeadClasses => {
            let (mut nodes, _, blocks) = parts(net);
            let head = net.head_start()?;
            let pos = nodes
                .iter()
                .rposition(|n| n.id() >= head && matches!(n.kind(), LayerKind::Dense { .. }))?;
            let node = &nodes[pos];
            let LayerKind::Dense { units } = *node.kind() else {
                return None;
            };
            nodes[pos] = Node::new(
                node.id(),
                node.name(),
                LayerKind::Dense { units: units + 1 },
                node.inputs().to_vec(),
            );
            // Re-infer every shape so the graph remains structurally
            // consistent: the *only* thing wrong is the class count, which
            // just the head-spec rule (NC009) can see.
            let mut inferred: Vec<Shape> = Vec::with_capacity(nodes.len());
            for node in &nodes {
                let s = infer_shape(node, &inferred, net.input_shape()).ok()?;
                inferred.push(s);
            }
            Some(rebuild(net, nodes, inferred, blocks))
        }
        Mutation::ForwardEdge => {
            let (mut nodes, shapes, blocks) = parts(net);
            let pos = nodes.iter().rposition(|n| !n.inputs().is_empty())?;
            let node = &nodes[pos];
            let mut inputs = node.inputs().to_vec();
            inputs[0] = node.id();
            nodes[pos] = Node::new(node.id(), node.name(), *node.kind(), inputs);
            // The node's former producer may become unreachable, so NC004
            // can accompany NC002 — the harness asserts membership, not
            // exact equality, for this class.
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::MismatchExitClasses => {
            if net.num_exits() < 2 {
                return None; // One lone exit has nothing to disagree with.
            }
            let (mut nodes, _, blocks) = parts(net);
            let exit = net.exits()[0];
            let range = exit.head_start().index()..=exit.output().index();
            let pos = exit.head_start().index()
                + nodes[range]
                    .iter()
                    .rposition(|n| matches!(n.kind(), LayerKind::Dense { .. }))?;
            let node = &nodes[pos];
            let LayerKind::Dense { units } = *node.kind() else {
                return None;
            };
            nodes[pos] = Node::new(
                node.id(),
                node.name(),
                LayerKind::Dense { units: units + 1 },
                node.inputs().to_vec(),
            );
            // Re-infer every shape (as MismatchHeadClasses does) so the only
            // finding left is the class disagreement between exits — NC013
            // exactly.
            let mut inferred: Vec<Shape> = Vec::with_capacity(nodes.len());
            for node in &nodes {
                let s = infer_shape(node, &inferred, net.input_shape()).ok()?;
                inferred.push(s);
            }
            Some(rebuild(net, nodes, inferred, blocks))
        }
        Mutation::SwapExitOrder => {
            if net.num_exits() < 2 {
                return None;
            }
            let mut exits = net.exits().to_vec();
            exits.swap(0, 1);
            // Each swapped entry stays internally consistent (it still taps
            // its own block), so coverage and isolation hold and the sole
            // finding is the broken shallowest-first order — NC014 exactly.
            Some(rebuild_exits(net, exits))
        }
        Mutation::DuplicateExitBoundary => {
            if net.num_exits() < 2 {
                return None;
            }
            let mut exits = net.exits().to_vec();
            exits[1] = ExitPoint::new(exits[0].block(), exits[1].head_start(), exits[1].output());
            // Node ranges are untouched, so ordering (NC014) and isolation
            // (NC016) hold; the double-claimed boundary, the uncovered one,
            // and the mismatched tap are all NC015.
            Some(rebuild_exits(net, exits))
        }
        Mutation::IntrudeExitRange => {
            let mut exits = net.exits().to_vec();
            let first = *exits.first()?;
            if first.head_start().index() == 0 {
                return None;
            }
            exits[0] = ExitPoint::new(
                first.block(),
                NodeId::new(first.head_start().index() - 1),
                first.output(),
            );
            // The swallowed node is the deepest backbone output — a node
            // other exits still consume — so both the head-region intrusion
            // and the broken sink property are NC016 findings, and nothing
            // else changes (the tap check defers to NC016 for intruding
            // exits).
            Some(rebuild_exits(net, exits))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use netcut_graph::zoo;

    #[test]
    fn drop_edge_needs_a_residual() {
        // MobileNetV1 has no Add nodes; the mutation must decline.
        assert!(apply(&zoo::mobilenet_v1(0.25), Mutation::DropEdge).is_none());
        assert!(apply(&zoo::resnet50(), Mutation::DropEdge).is_some());
    }

    #[test]
    fn corrupt_shape_is_caught_exactly() {
        let net = zoo::mobilenet_v1(0.25);
        let broken = apply(&net, Mutation::CorruptShape).unwrap();
        let report = Analyzer::new().analyze(&broken);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::NC003));
    }
}
