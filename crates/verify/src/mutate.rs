//! Mutation harness: structured ways of breaking a valid network, each with
//! a documented diagnostic the analyzer must produce.
//!
//! This is the negative half of the analyzer's test surface: property tests
//! assert that builder/zoo networks are clean, and this module asserts that
//! each class of corruption is caught with its *specific* `NC0xx` code — a
//! verifier that flags everything as "invalid" would pass the positive tests
//! but fail these.

use crate::diagnostic::Code;
use crate::serve_plane::{ServeArtifact, WindowSpec, PPM};
use netcut_graph::{infer_shape, Block, ExitPoint, LayerKind, Network, Node, NodeId, Shape};

/// A structured corruption applied to a valid network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Drop one input of a residual `Add` whose producer has no other
    /// consumer, leaving a dangling sub-graph → NC004.
    DropEdge,
    /// Bump the stored channel count of a convolution's shape so it no
    /// longer matches re-inference → NC003.
    CorruptShape,
    /// Remove a block's output node from its member list, so the recorded
    /// cutpoint is no longer inside the block → NC006.
    SpliceBlockBoundary,
    /// Extend a block to also claim the first node of the next block,
    /// making the two overlap → NC007.
    OverlapBlocks,
    /// Grow the head's logits layer by one unit (shapes re-inferred, so the
    /// graph stays structurally consistent) → NC009 under an expected
    /// [`netcut_graph::HeadSpec`].
    MismatchHeadClasses,
    /// Rewire one input to point at the consumer itself, breaking
    /// topological order → NC002.
    ForwardEdge,
    /// Grow the logits layer of the *shallowest* exit head by one unit
    /// (shapes re-inferred), so its class count disagrees with the other
    /// exits → NC013. Requires a multi-exit network.
    MismatchExitClasses,
    /// Swap the first two entries of the exit table, so exits are no longer
    /// stored shallowest-first → NC014. Requires ≥ 2 exits.
    SwapExitOrder,
    /// Point the second exit's `block` at the first exit's boundary, so one
    /// boundary carries two heads and another none → NC015. Requires ≥ 2
    /// exits.
    DuplicateExitBoundary,
    /// Stretch the shallowest exit's range one node down into the backbone,
    /// so the exit is no longer isolated in the head region → NC016.
    /// Requires a multi-exit network.
    IntrudeExitRange,
}

impl Mutation {
    /// Every mutation class, for exhaustive harness loops.
    pub fn all() -> [Mutation; 10] {
        [
            Mutation::DropEdge,
            Mutation::CorruptShape,
            Mutation::SpliceBlockBoundary,
            Mutation::OverlapBlocks,
            Mutation::MismatchHeadClasses,
            Mutation::ForwardEdge,
            Mutation::MismatchExitClasses,
            Mutation::SwapExitOrder,
            Mutation::DuplicateExitBoundary,
            Mutation::IntrudeExitRange,
        ]
    }

    /// The diagnostic code the analyzer must produce for this mutation.
    pub fn expected_code(self) -> Code {
        match self {
            Mutation::DropEdge => Code::NC004,
            Mutation::CorruptShape => Code::NC003,
            Mutation::SpliceBlockBoundary => Code::NC006,
            Mutation::OverlapBlocks => Code::NC007,
            Mutation::MismatchHeadClasses => Code::NC009,
            Mutation::ForwardEdge => Code::NC002,
            Mutation::MismatchExitClasses => Code::NC013,
            Mutation::SwapExitOrder => Code::NC014,
            Mutation::DuplicateExitBoundary => Code::NC015,
            Mutation::IntrudeExitRange => Code::NC016,
        }
    }

    /// `true` for classes that corrupt the exit table and therefore need a
    /// multi-exit base network (see [`netcut_graph::Network::with_exit_heads`]).
    pub fn needs_exit_table(self) -> bool {
        matches!(
            self,
            Mutation::MismatchExitClasses
                | Mutation::SwapExitOrder
                | Mutation::DuplicateExitBoundary
                | Mutation::IntrudeExitRange
        )
    }
}

fn parts(net: &Network) -> (Vec<Node>, Vec<Shape>, Vec<Block>) {
    (
        net.nodes().to_vec(),
        net.shapes().to_vec(),
        net.blocks().to_vec(),
    )
}

fn rebuild(net: &Network, nodes: Vec<Node>, shapes: Vec<Shape>, blocks: Vec<Block>) -> Network {
    Network::from_parts(
        format!("{}~mutated", net.name()),
        net.input_shape(),
        nodes,
        shapes,
        net.output(),
        blocks,
        net.head_start(),
    )
    .with_exit_points(net.exits().to_vec())
}

/// Rebuilds with only the exit table replaced — the node-level structure of
/// the network stays byte-identical.
fn rebuild_exits(net: &Network, exits: Vec<ExitPoint>) -> Network {
    let (nodes, shapes, blocks) = parts(net);
    rebuild(net, nodes, shapes, blocks).with_exit_points(exits)
}

/// Number of consumers of `id` within the node list (graph-output use not
/// counted).
fn consumer_count(nodes: &[Node], id: NodeId) -> usize {
    nodes
        .iter()
        .flat_map(Node::inputs)
        .filter(|&&inp| inp == id)
        .count()
}

/// Applies `mutation` to a copy of `net`, returning `None` when the network
/// has no site for it (e.g. [`Mutation::DropEdge`] on a network with no
/// residual connections). The result is crafted so the analyzer reports the
/// mutation's [`expected_code`](Mutation::expected_code) — see each variant
/// for which companion diagnostics are possible.
pub fn apply(net: &Network, mutation: Mutation) -> Option<Network> {
    match mutation {
        Mutation::DropEdge => {
            let (mut nodes, shapes, blocks) = parts(net);
            // Find an Add whose dropped input has exactly one consumer, so
            // removing the edge strands that producer's entire branch.
            let (pos, victim) = nodes.iter().enumerate().rev().find_map(|(i, n)| {
                if !matches!(n.kind(), LayerKind::Add) || n.inputs().len() < 2 {
                    return None;
                }
                n.inputs()
                    .iter()
                    .position(|&inp| consumer_count(&nodes, inp) == 1)
                    .map(|slot| (i, slot))
            })?;
            let node = &nodes[pos];
            let mut inputs = node.inputs().to_vec();
            inputs.remove(victim);
            nodes[pos] = Node::new(node.id(), node.name(), *node.kind(), inputs);
            // Note: the Add's shape still re-infers identically (all Add
            // inputs share a shape), so the only finding is the dangling
            // branch — NC004 exactly.
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::CorruptShape => {
            let (nodes, mut shapes, blocks) = parts(net);
            let pos = nodes.iter().position(|n| {
                matches!(n.kind(), LayerKind::Conv2d { .. }) && !net.is_head_node(n.id())
            })?;
            let Shape::Map { c, h, w } = shapes.get(pos).copied()? else {
                return None;
            };
            shapes[pos] = Shape::map(c + 1, h, w);
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::SpliceBlockBoundary => {
            let (nodes, shapes, mut blocks) = parts(net);
            let bi = blocks.iter().position(|b| b.nodes().len() >= 2)?;
            let block = &blocks[bi];
            let members: Vec<NodeId> = block
                .nodes()
                .iter()
                .copied()
                .filter(|&id| id != block.output())
                .collect();
            blocks[bi] = Block::new(block.name(), members, block.output());
            // The member list stays contiguous (the output is a block's last
            // node), so the sole finding is the output falling outside the
            // block — NC006 exactly.
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::OverlapBlocks => {
            let (nodes, shapes, mut blocks) = parts(net);
            if blocks.len() < 2 {
                return None;
            }
            let stolen = *blocks[1].nodes().first()?;
            let block = &blocks[0];
            let mut members = block.nodes().to_vec();
            members.push(stolen);
            // Blocks are adjacent in the zoo, so the grown list stays
            // contiguous and the only finding is dual ownership — NC007.
            blocks[0] = Block::new(block.name(), members, block.output());
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::MismatchHeadClasses => {
            let (mut nodes, _, blocks) = parts(net);
            let head = net.head_start()?;
            let pos = nodes
                .iter()
                .rposition(|n| n.id() >= head && matches!(n.kind(), LayerKind::Dense { .. }))?;
            let node = &nodes[pos];
            let LayerKind::Dense { units } = *node.kind() else {
                return None;
            };
            nodes[pos] = Node::new(
                node.id(),
                node.name(),
                LayerKind::Dense { units: units + 1 },
                node.inputs().to_vec(),
            );
            // Re-infer every shape so the graph remains structurally
            // consistent: the *only* thing wrong is the class count, which
            // just the head-spec rule (NC009) can see.
            let mut inferred: Vec<Shape> = Vec::with_capacity(nodes.len());
            for node in &nodes {
                let s = infer_shape(node, &inferred, net.input_shape()).ok()?;
                inferred.push(s);
            }
            Some(rebuild(net, nodes, inferred, blocks))
        }
        Mutation::ForwardEdge => {
            let (mut nodes, shapes, blocks) = parts(net);
            let pos = nodes.iter().rposition(|n| !n.inputs().is_empty())?;
            let node = &nodes[pos];
            let mut inputs = node.inputs().to_vec();
            inputs[0] = node.id();
            nodes[pos] = Node::new(node.id(), node.name(), *node.kind(), inputs);
            // The node's former producer may become unreachable, so NC004
            // can accompany NC002 — the harness asserts membership, not
            // exact equality, for this class.
            Some(rebuild(net, nodes, shapes, blocks))
        }
        Mutation::MismatchExitClasses => {
            if net.num_exits() < 2 {
                return None; // One lone exit has nothing to disagree with.
            }
            let (mut nodes, _, blocks) = parts(net);
            let exit = net.exits()[0];
            let range = exit.head_start().index()..=exit.output().index();
            let pos = exit.head_start().index()
                + nodes[range]
                    .iter()
                    .rposition(|n| matches!(n.kind(), LayerKind::Dense { .. }))?;
            let node = &nodes[pos];
            let LayerKind::Dense { units } = *node.kind() else {
                return None;
            };
            nodes[pos] = Node::new(
                node.id(),
                node.name(),
                LayerKind::Dense { units: units + 1 },
                node.inputs().to_vec(),
            );
            // Re-infer every shape (as MismatchHeadClasses does) so the only
            // finding left is the class disagreement between exits — NC013
            // exactly.
            let mut inferred: Vec<Shape> = Vec::with_capacity(nodes.len());
            for node in &nodes {
                let s = infer_shape(node, &inferred, net.input_shape()).ok()?;
                inferred.push(s);
            }
            Some(rebuild(net, nodes, inferred, blocks))
        }
        Mutation::SwapExitOrder => {
            if net.num_exits() < 2 {
                return None;
            }
            let mut exits = net.exits().to_vec();
            exits.swap(0, 1);
            // Each swapped entry stays internally consistent (it still taps
            // its own block), so coverage and isolation hold and the sole
            // finding is the broken shallowest-first order — NC014 exactly.
            Some(rebuild_exits(net, exits))
        }
        Mutation::DuplicateExitBoundary => {
            if net.num_exits() < 2 {
                return None;
            }
            let mut exits = net.exits().to_vec();
            exits[1] = ExitPoint::new(exits[0].block(), exits[1].head_start(), exits[1].output());
            // Node ranges are untouched, so ordering (NC014) and isolation
            // (NC016) hold; the double-claimed boundary, the uncovered one,
            // and the mismatched tap are all NC015.
            Some(rebuild_exits(net, exits))
        }
        Mutation::IntrudeExitRange => {
            let mut exits = net.exits().to_vec();
            let first = *exits.first()?;
            if first.head_start().index() == 0 {
                return None;
            }
            exits[0] = ExitPoint::new(
                first.block(),
                NodeId::new(first.head_start().index() - 1),
                first.output(),
            );
            // The swallowed node is the deepest backbone output — a node
            // other exits still consume — so both the head-region intrusion
            // and the broken sink property are NC016 findings, and nothing
            // else changes (the tap check defers to NC016 for intruding
            // exits).
            Some(rebuild_exits(net, exits))
        }
    }
}

// ---------------------------------------------------------------------------
// Serve-plane mutations (SV001–SV013)
// ---------------------------------------------------------------------------

/// A structured corruption applied to a valid [`ServeArtifact`] — the
/// serve-plane half of the harness, one class per SV code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMutation {
    /// Swap the first two rungs' latencies on a single-device shard, so the
    /// ladder is no longer strictly ascending → SV001.
    SwapRungLatencies,
    /// Pin the exit one past the end of the table → SV002.
    PinPastTable,
    /// Drop the deepest rung's accuracy below the shallowest's, making it
    /// strictly dominated (slower *and* less accurate) → SV003.
    DominateRung,
    /// Lift a curve's batch-1 cost off the `PPM` anchor → SV004.
    UnanchorBatchCurve,
    /// Push a curve's deepest point past the linear ceiling, so a batch
    /// costs more than serial dispatch → SV005.
    SuperlinearBatchCurve,
    /// Nudge one rung's latency on a shard whose device another shard also
    /// serves, so identical hardware predicts different latencies → SV006.
    /// Requires two shards on one device.
    DivergeRoster,
    /// Stretch a shard's fault window past the scenario duration → SV007.
    StretchFaultWindow,
    /// Duplicate a fault window one microsecond later (in both the global
    /// plan and its owning shard), so two same-class windows overlap →
    /// SV008.
    OverlapFaultWindows,
    /// Remove a window from its owning shard while the global timeline
    /// keeps it, leaving the global window owned by nobody → SV009.
    OrphanFaultWindow,
    /// Zero the SLO miss budget → SV010.
    ZeroBudget,
    /// Lower the burn alert below the on-budget line → SV011.
    InvertBurnThreshold,
    /// Raise the burn alert above the all-miss burn rate, so OBS001 can
    /// never fire → SV012.
    UnreachableBurnAlert,
    /// Shrink the recalibration refit window below the sample floor the
    /// trigger requires, starving every refit → SV013.
    StarveRecalibWindow,
}

impl ServeMutation {
    /// Every serve-plane mutation class, for exhaustive harness loops.
    pub fn all() -> [ServeMutation; 13] {
        [
            ServeMutation::SwapRungLatencies,
            ServeMutation::PinPastTable,
            ServeMutation::DominateRung,
            ServeMutation::UnanchorBatchCurve,
            ServeMutation::SuperlinearBatchCurve,
            ServeMutation::DivergeRoster,
            ServeMutation::StretchFaultWindow,
            ServeMutation::OverlapFaultWindows,
            ServeMutation::OrphanFaultWindow,
            ServeMutation::ZeroBudget,
            ServeMutation::InvertBurnThreshold,
            ServeMutation::UnreachableBurnAlert,
            ServeMutation::StarveRecalibWindow,
        ]
    }

    /// The diagnostic code the serve-plane analyzer must produce for this
    /// mutation.
    pub fn expected_code(self) -> Code {
        match self {
            ServeMutation::SwapRungLatencies => Code::SV001,
            ServeMutation::PinPastTable => Code::SV002,
            ServeMutation::DominateRung => Code::SV003,
            ServeMutation::UnanchorBatchCurve => Code::SV004,
            ServeMutation::SuperlinearBatchCurve => Code::SV005,
            ServeMutation::DivergeRoster => Code::SV006,
            ServeMutation::StretchFaultWindow => Code::SV007,
            ServeMutation::OverlapFaultWindows => Code::SV008,
            ServeMutation::OrphanFaultWindow => Code::SV009,
            ServeMutation::ZeroBudget => Code::SV010,
            ServeMutation::InvertBurnThreshold => Code::SV011,
            ServeMutation::UnreachableBurnAlert => Code::SV012,
            ServeMutation::StarveRecalibWindow => Code::SV013,
        }
    }
}

/// Index of a shard whose device no other shard serves — the safe target
/// for ladder corruptions, which must not also diverge a multi-shard
/// roster (SV006 owns that).
fn lone_device_shard(artifact: &ServeArtifact) -> Option<usize> {
    artifact.shards.iter().position(|s| {
        artifact
            .shards
            .iter()
            .filter(|o| o.ladder.device == s.ladder.device)
            .count()
            == 1
    })
}

/// Applies `mutation` to a copy of `artifact`, returning `None` when the
/// artifact has no site for it (e.g. [`ServeMutation::DivergeRoster`] on a
/// roster with no shared device). As with the NC half, each result is
/// crafted so the serve-plane analyzer reports the mutation's
/// [`expected_code`](ServeMutation::expected_code) and nothing else.
pub fn apply_serve(artifact: &ServeArtifact, mutation: ServeMutation) -> Option<ServeArtifact> {
    let mut out = artifact.clone();
    out.scenario = format!("{}~mutated", artifact.scenario);
    match mutation {
        ServeMutation::SwapRungLatencies => {
            let shard = &mut out.shards[lone_device_shard(artifact)?];
            if shard.ladder.rungs.len() < 2 {
                return None;
            }
            let l0 = shard.ladder.rungs[0].latency_us;
            shard.ladder.rungs[0].latency_us = shard.ladder.rungs[1].latency_us;
            shard.ladder.rungs[1].latency_us = l0;
            // Accuracies are untouched and SV003 defers on unordered
            // ladders, so the broken order is the sole finding.
            Some(out)
        }
        ServeMutation::PinPastTable => {
            let shard = &mut out.shards[lone_device_shard(artifact)?];
            shard.ladder.exit_pin = Some(shard.ladder.rungs.len());
            Some(out)
        }
        ServeMutation::DominateRung => {
            let shard = &mut out.shards[lone_device_shard(artifact)?];
            if shard.ladder.rungs.len() < 2 {
                return None;
            }
            let floor = shard.ladder.rungs[0].accuracy_ppm;
            shard.ladder.rungs.last_mut()?.accuracy_ppm = floor.checked_sub(1)?;
            // Latencies keep their strict order, so SV001 stays quiet and
            // the dominated deepest rung is the sole finding.
            Some(out)
        }
        ServeMutation::UnanchorBatchCurve => {
            let shard = &mut out.shards[lone_device_shard(artifact)?];
            let curve = shard.ladder.batch_curves.first_mut()?;
            // Keep the curve nondecreasing (SV005's property) by nudging the
            // anchor only when the next point sits strictly above it.
            if curve.len() >= 2 && curve[1] <= PPM + 1 {
                return None;
            }
            curve[0] = PPM + 1;
            Some(out)
        }
        ServeMutation::SuperlinearBatchCurve => {
            let shard = &mut out.shards[lone_device_shard(artifact)?];
            let curve = shard.ladder.batch_curves.last_mut()?;
            if curve.len() < 2 {
                return None;
            }
            let batch = curve.len() as u64;
            // One past the linear ceiling; in a valid curve every earlier
            // point is below it, so the curve stays nondecreasing.
            *curve.last_mut()? = batch * PPM + 1;
            Some(out)
        }
        ServeMutation::DivergeRoster => {
            let twin = artifact.shards.iter().position(|s| {
                artifact
                    .shards
                    .iter()
                    .filter(|o| o.ladder.device == s.ladder.device)
                    .count()
                    > 1
            })?;
            let rung = out.shards[twin].ladder.rungs.last_mut()?;
            // The deepest rung only grows, so the ladder stays strictly
            // ordered and undominated — the divergence is the sole finding.
            rung.latency_us = rung.latency_us.checked_add(1)?;
            Some(out)
        }
        ServeMutation::StretchFaultWindow => {
            let duration = artifact.duration_us;
            let shard = out.shards.iter_mut().find(|s| {
                s.fault_windows
                    .iter()
                    .any(|w| w.start_us < w.end_us && w.end_us <= duration)
            })?;
            let w = shard
                .fault_windows
                .iter_mut()
                .find(|w| w.start_us < w.end_us && w.end_us <= duration)?;
            // The partition rule matches on (class, start), so stretching
            // the end past the duration trips only the bounds rule.
            w.end_us = duration.checked_add(1_000)?;
            Some(out)
        }
        ServeMutation::OverlapFaultWindows => {
            let seed = artifact.global_faults.first()?.clone();
            if seed.end_us.saturating_sub(seed.start_us) < 2 || seed.end_us >= artifact.duration_us
            {
                return None;
            }
            let twin = WindowSpec {
                class: seed.class,
                start_us: seed.start_us + 1,
                end_us: seed.end_us + 1,
            };
            let owner = out.shards.iter_mut().find(|s| {
                s.fault_windows
                    .iter()
                    .any(|w| w.class == seed.class && w.start_us == seed.start_us)
            })?;
            // Mirror the twin into both the global plan and the owning
            // shard, so the partition stays a bijection and the same-class
            // overlap is the sole finding.
            owner.fault_windows.push(twin.clone());
            out.global_faults.push(twin);
            Some(out)
        }
        ServeMutation::OrphanFaultWindow => {
            let shard = out
                .shards
                .iter_mut()
                .find(|s| !s.fault_windows.is_empty())?;
            shard.fault_windows.remove(0);
            Some(out)
        }
        ServeMutation::ZeroBudget => {
            out.slo.miss_budget_ppm = 0;
            Some(out)
        }
        ServeMutation::InvertBurnThreshold => {
            out.slo.burn_alert_ppm = PPM - 1;
            Some(out)
        }
        ServeMutation::UnreachableBurnAlert => {
            let max_burn = ((u128::from(PPM) * u128::from(PPM))
                / u128::from(artifact.slo.miss_budget_ppm.max(1)))
            .min(u128::from(u64::MAX - 1)) as u64;
            out.slo.burn_alert_ppm = max_burn + 1;
            Some(out)
        }
        ServeMutation::StarveRecalibWindow => {
            let r = out.recalib.as_mut()?;
            // A zero sample floor is SV013's own finding; the starved
            // window needs a nonzero floor to undercut.
            r.window = r.min_samples.checked_sub(1)?;
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analyzer;
    use netcut_graph::zoo;

    #[test]
    fn drop_edge_needs_a_residual() {
        // MobileNetV1 has no Add nodes; the mutation must decline.
        assert!(apply(&zoo::mobilenet_v1(0.25), Mutation::DropEdge).is_none());
        assert!(apply(&zoo::resnet50(), Mutation::DropEdge).is_some());
    }

    #[test]
    fn corrupt_shape_is_caught_exactly() {
        let net = zoo::mobilenet_v1(0.25);
        let broken = apply(&net, Mutation::CorruptShape).unwrap();
        let report = Analyzer::new().analyze(&broken);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::NC003));
    }
}
