//! The [`Rule`] trait, the individual rules (NC001–NC016), and the
//! [`Analyzer`] registry that runs them.
//!
//! Rules are deliberately defensive: each one guards every index before
//! dereferencing, so the analyzer never panics on arbitrarily broken graphs
//! (that is the whole point — broken graphs are its input domain). Rules do
//! not repeat each other's findings: e.g. the stats rule silently skips
//! networks whose shapes are already inconsistent, because NC003 owns that
//! report.

use crate::diagnostic::{Code, Diagnostic, GraphSpan, Report, Severity};
use netcut_graph::{infer_shape, HeadSpec, LayerKind, Network, Node, Shape};
use netcut_obs as obs;

/// One verification rule: examines a network and appends any findings.
///
/// Implementations must tolerate arbitrarily malformed graphs without
/// panicking; prefer emitting a diagnostic (or silently deferring to the
/// rule that owns the broken invariant) over indexing blindly.
pub trait Rule: Send + Sync {
    /// The stable code this rule reports under.
    fn code(&self) -> Code;

    /// Checks `net`, appending findings to `out`.
    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>);
}

// ---------------------------------------------------------------------------
// Shared guards
// ---------------------------------------------------------------------------

/// `true` when ids are topologically ordered, one shape is stored per node,
/// and re-inference reproduces every stored shape. Rules that *consume*
/// shapes (stats, estimator features) use this to defer to NC002/NC003
/// instead of double-reporting or panicking.
fn shapes_fully_consistent(net: &Network) -> bool {
    let n = net.len();
    if n == 0 || net.shapes().len() != n || net.output().index() >= n {
        return false;
    }
    for (i, node) in net.nodes().iter().enumerate() {
        if node.id().index() != i || node.inputs().iter().any(|inp| inp.index() >= i) {
            return false;
        }
        match infer_shape(node, net.shapes(), net.input_shape()) {
            Ok(s) if s == net.shape(node.id()) => {}
            _ => return false,
        }
    }
    true
}

fn node_span(node: &Node) -> GraphSpan {
    GraphSpan::Node {
        id: node.id(),
        name: node.name().to_owned(),
    }
}

fn block_span(index: usize, net: &Network) -> GraphSpan {
    GraphSpan::Block {
        index,
        name: net.blocks()[index].name().to_owned(),
    }
}

// ---------------------------------------------------------------------------
// NC001 empty-network
// ---------------------------------------------------------------------------

struct EmptyNetwork;

impl Rule for EmptyNetwork {
    fn code(&self) -> Code {
        Code::NC001
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        if net.is_empty() {
            out.push(Diagnostic::new(
                Code::NC001,
                GraphSpan::Network,
                "network has no nodes",
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// NC002 topological-order
// ---------------------------------------------------------------------------

struct TopologicalOrder;

impl Rule for TopologicalOrder {
    fn code(&self) -> Code {
        Code::NC002
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        for (i, node) in net.nodes().iter().enumerate() {
            if node.id().index() != i {
                out.push(Diagnostic::new(
                    Code::NC002,
                    node_span(node),
                    format!("stored id {} disagrees with position {i}", node.id()),
                ));
            }
            for &inp in node.inputs() {
                if inp.index() >= i {
                    out.push(Diagnostic::new(
                        Code::NC002,
                        GraphSpan::Edge {
                            from: inp,
                            to: node.id(),
                            to_name: node.name().to_owned(),
                        },
                        format!(
                            "input {inp} does not strictly precede its consumer at position {i}"
                        ),
                    ));
                }
            }
        }
        if net.output().index() >= net.len() && !net.is_empty() {
            out.push(Diagnostic::new(
                Code::NC002,
                GraphSpan::Network,
                format!(
                    "graph output {} is outside the {}-node graph",
                    net.output(),
                    net.len()
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// NC003 shape-consistency
// ---------------------------------------------------------------------------

struct ShapeConsistency;

impl Rule for ShapeConsistency {
    fn code(&self) -> Code {
        Code::NC003
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        if net.shapes().len() != net.len() {
            out.push(Diagnostic::new(
                Code::NC003,
                GraphSpan::Network,
                format!(
                    "{} stored shapes for {} nodes",
                    net.shapes().len(),
                    net.len()
                ),
            ));
            return;
        }
        for (i, node) in net.nodes().iter().enumerate() {
            // Out-of-order inputs are NC002's finding; re-inference would
            // read shapes the topology does not justify.
            if node.inputs().iter().any(|inp| inp.index() >= i) {
                continue;
            }
            match infer_shape(node, net.shapes(), net.input_shape()) {
                Err(e) => out.push(Diagnostic::new(
                    Code::NC003,
                    node_span(node),
                    format!("shape inference fails: {e}"),
                )),
                Ok(inferred) => {
                    let stored = net.shapes()[i];
                    if inferred != stored {
                        out.push(Diagnostic::new(
                            Code::NC003,
                            node_span(node),
                            format!("stored shape {stored} but re-inference gives {inferred}"),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NC004 reachability
// ---------------------------------------------------------------------------

struct Reachability;

impl Rule for Reachability {
    fn code(&self) -> Code {
        Code::NC004
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        let n = net.len();
        if n == 0 || net.output().index() >= n {
            return; // NC001 / NC002 territory.
        }
        let mut reachable = vec![false; n];
        reachable[net.output().index()] = true;
        // Every exit of a multi-exit network is a live output: a shallow
        // exit head is not dangling just because the graph output is the
        // deepest one.
        for exit in net.exits() {
            if exit.output().index() < n {
                reachable[exit.output().index()] = true;
            }
        }
        // Inputs point backward on well-ordered graphs, so one reverse pass
        // marks every ancestor; forward references are skipped (NC002).
        for i in (0..n).rev() {
            if !reachable[i] {
                continue;
            }
            for &inp in net.nodes()[i].inputs() {
                if inp.index() < i {
                    reachable[inp.index()] = true;
                }
            }
        }
        for (node, seen) in net.nodes().iter().zip(&reachable) {
            if !seen {
                out.push(Diagnostic::new(
                    Code::NC004,
                    node_span(node),
                    "unreachable from the graph output (dangling node)",
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NC005 block-structure
// ---------------------------------------------------------------------------

struct BlockStructure;

impl Rule for BlockStructure {
    fn code(&self) -> Code {
        Code::NC005
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        let n = net.len();
        for (bi, block) in net.blocks().iter().enumerate() {
            if block.nodes().is_empty() {
                out.push(Diagnostic::new(
                    Code::NC005,
                    block_span(bi, net),
                    "block owns no nodes",
                ));
            }
            for &id in block.nodes() {
                if id.index() >= n {
                    out.push(Diagnostic::new(
                        Code::NC005,
                        block_span(bi, net),
                        format!("block references {id}, outside the {n}-node graph"),
                    ));
                }
            }
            if block.output().index() >= n {
                out.push(Diagnostic::new(
                    Code::NC005,
                    block_span(bi, net),
                    format!(
                        "block output {} is outside the {n}-node graph",
                        block.output()
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NC006 block-boundary
// ---------------------------------------------------------------------------

/// Maps each node index to the index of the block owning it. `None` when
/// block membership is itself broken in a way NC005/NC007 reports.
fn block_owner(net: &Network) -> Vec<Option<usize>> {
    let mut owner = vec![None; net.len()];
    for (bi, block) in net.blocks().iter().enumerate() {
        for &id in block.nodes() {
            if let Some(slot) = owner.get_mut(id.index()) {
                // First claim wins; duplicate ownership is NC007's finding.
                slot.get_or_insert(bi);
            }
        }
    }
    owner
}

struct BlockBoundary;

impl Rule for BlockBoundary {
    fn code(&self) -> Code {
        Code::NC006
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        let n = net.len();
        for (bi, block) in net.blocks().iter().enumerate() {
            if block.nodes().iter().any(|id| id.index() >= n) {
                continue; // NC005 territory.
            }
            for pair in block.nodes().windows(2) {
                if pair[1].index() != pair[0].index() + 1 {
                    out.push(Diagnostic::new(
                        Code::NC006,
                        block_span(bi, net),
                        format!(
                            "block nodes are not contiguous: {} is followed by {}",
                            pair[0], pair[1]
                        ),
                    ));
                }
            }
            if !block.nodes().is_empty() && !block.nodes().contains(&block.output()) {
                out.push(Diagnostic::new(
                    Code::NC006,
                    block_span(bi, net),
                    format!(
                        "block output {} is not a member of the block",
                        block.output()
                    ),
                ));
            }
        }
        // Interior taps: an edge from outside a block consuming anything but
        // the block's output means cutting after that block would sever a
        // live data dependency.
        let owner = block_owner(net);
        for node in net.nodes() {
            let consumer_block = owner.get(node.id().index()).copied().flatten();
            for &inp in node.inputs() {
                let Some(Some(bi)) = owner.get(inp.index()).copied() else {
                    continue;
                };
                if inp != net.blocks()[bi].output() && consumer_block != Some(bi) {
                    out.push(Diagnostic::new(
                        Code::NC006,
                        GraphSpan::Edge {
                            from: inp,
                            to: node.id(),
                            to_name: node.name().to_owned(),
                        },
                        format!(
                            "edge taps the interior of block #{bi} `{}`; a cut after that \
                             block would sever it",
                            net.blocks()[bi].name()
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NC007 cutpoint-monotonicity
// ---------------------------------------------------------------------------

struct CutpointMonotonicity;

impl Rule for CutpointMonotonicity {
    fn code(&self) -> Code {
        Code::NC007
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        for (bi, pair) in net.blocks().windows(2).enumerate() {
            if pair[1].output().index() <= pair[0].output().index() {
                out.push(Diagnostic::new(
                    Code::NC007,
                    block_span(bi + 1, net),
                    format!(
                        "cutpoint {} does not come after the previous block's cutpoint {}",
                        pair[1].output(),
                        pair[0].output()
                    ),
                ));
            }
        }
        let mut owner: Vec<Option<usize>> = vec![None; net.len()];
        for (bi, block) in net.blocks().iter().enumerate() {
            for &id in block.nodes() {
                match owner.get_mut(id.index()) {
                    Some(slot @ None) => *slot = Some(bi),
                    Some(Some(first)) => {
                        let first = *first;
                        out.push(Diagnostic::new(
                            Code::NC007,
                            block_span(bi, net),
                            format!(
                                "{id} is owned by both block #{first} `{}` and this block",
                                net.blocks()[first].name()
                            ),
                        ));
                    }
                    None => {} // Out of range: NC005 territory.
                }
            }
        }
        if let Some(head) = net.head_start() {
            for (bi, block) in net.blocks().iter().enumerate() {
                if block.nodes().iter().any(|id| id.index() >= head.index()) {
                    out.push(Diagnostic::new(
                        Code::NC007,
                        block_span(bi, net),
                        format!("removable block extends into the head (from {head})"),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NC008 head-structure
// ---------------------------------------------------------------------------

struct HeadStructure;

impl Rule for HeadStructure {
    fn code(&self) -> Code {
        Code::NC008
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        let Some(head) = net.head_start() else {
            return; // Headless backbones (raw TRNs) are legitimate.
        };
        let n = net.len();
        if head.index() >= n {
            out.push(Diagnostic::new(
                Code::NC008,
                GraphSpan::Head { start: head },
                format!("head starts at {head}, outside the {n}-node graph"),
            ));
            return;
        }
        if net.output().index() < head.index() {
            out.push(Diagnostic::new(
                Code::NC008,
                GraphSpan::Head { start: head },
                format!(
                    "graph output {} precedes the head; classification must come last",
                    net.output()
                ),
            ));
        }
        // SqueezeNet classifies through a 1×1 convolution rather than a
        // Dense layer, so the requirement is "some weighted layer", not
        // "a Dense layer".
        if !net.nodes()[head.index()..]
            .iter()
            .any(|node| node.kind().is_weighted())
        {
            out.push(Diagnostic::new(
                Code::NC008,
                GraphSpan::Head { start: head },
                "head contains no weighted layer (no conv or dense)",
            ));
        }
        if net.output().index() < net.shapes().len() {
            let shape = net.shape(net.output());
            if !matches!(shape, Shape::Vector { .. }) {
                out.push(Diagnostic::new(
                    Code::NC008,
                    GraphSpan::Head { start: head },
                    format!("network output is {shape}, not a class-probability vector"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NC009 head-spec
// ---------------------------------------------------------------------------

/// Checks the attached head against an expected [`HeadSpec`] — the FC stack
/// `with_head` should have produced. Opt-in via
/// [`Analyzer::with_expected_head`] because raw zoo networks legitimately
/// carry their original ImageNet heads.
pub struct HeadSpecRule {
    spec: HeadSpec,
}

impl HeadSpecRule {
    /// A rule expecting `spec`'s hidden stack and class count.
    pub fn new(spec: HeadSpec) -> Self {
        HeadSpecRule { spec }
    }
}

impl Rule for HeadSpecRule {
    fn code(&self) -> Code {
        Code::NC009
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        if !net.exits().is_empty() {
            return; // Multi-exit heads are NC013–NC016 territory.
        }
        let Some(head) = net.head_start() else {
            out.push(Diagnostic::new(
                Code::NC009,
                GraphSpan::Network,
                "expected a classification head, but none is attached",
            ));
            return;
        };
        if head.index() >= net.len() {
            return; // NC008 territory.
        }
        let expected: Vec<usize> = self
            .spec
            .hidden
            .iter()
            .copied()
            .chain(std::iter::once(self.spec.classes))
            .collect();
        let actual: Vec<usize> = net.nodes()[head.index()..]
            .iter()
            .filter_map(|node| match *node.kind() {
                LayerKind::Dense { units } => Some(units),
                _ => None,
            })
            .collect();
        if actual != expected {
            out.push(Diagnostic::new(
                Code::NC009,
                GraphSpan::Head { start: head },
                format!("head FC stack {actual:?} does not match the expected {expected:?}"),
            ));
        }
        if net.output().index() < net.shapes().len() {
            match net.shape(net.output()) {
                Shape::Vector { n } if n == self.spec.classes => {}
                other => out.push(Diagnostic::new(
                    Code::NC009,
                    GraphSpan::Head { start: head },
                    format!(
                        "network output is {other} but the head spec expects {} classes",
                        self.spec.classes
                    ),
                )),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// NC010 stats-coherence
// ---------------------------------------------------------------------------

/// Independent FLOPs/params recomputation for the weighted kinds, kept
/// deliberately separate from `stats.rs` so a regression in either copy of
/// the formulas is caught. Returns `None` for unweighted kinds.
fn expected_weighted_cost(net: &Network, node: &Node) -> Option<(u64, u64)> {
    let out_shape = net.shape(node.id());
    let in_shape = net.shape(*node.inputs().first()?);
    match *node.kind() {
        LayerKind::Conv2d {
            out_channels,
            kernel,
            ..
        } => {
            let Shape::Map { h, w, .. } = out_shape else {
                return None;
            };
            let Shape::Map { c: cin, .. } = in_shape else {
                return None;
            };
            let k = (kernel * kernel) as u64;
            let weights = k * cin as u64 * out_channels as u64;
            Some((2 * weights * (h * w) as u64, weights + out_channels as u64))
        }
        LayerKind::Conv2dRect {
            out_channels,
            kernel_h,
            kernel_w,
            ..
        } => {
            let Shape::Map { h, w, .. } = out_shape else {
                return None;
            };
            let Shape::Map { c: cin, .. } = in_shape else {
                return None;
            };
            let k = (kernel_h * kernel_w) as u64;
            let weights = k * cin as u64 * out_channels as u64;
            Some((2 * weights * (h * w) as u64, weights + out_channels as u64))
        }
        LayerKind::DepthwiseConv2d { kernel, .. } => {
            let Shape::Map { c, h, w } = out_shape else {
                return None;
            };
            let k = (kernel * kernel) as u64;
            Some((2 * k * c as u64 * (h * w) as u64, k * c as u64 + c as u64))
        }
        LayerKind::Dense { units } => {
            let input = in_shape.elements() as u64;
            Some((
                2 * input * units as u64,
                input * units as u64 + units as u64,
            ))
        }
        _ => None,
    }
}

struct StatsCoherence;

impl Rule for StatsCoherence {
    fn code(&self) -> Code {
        Code::NC010
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        if !shapes_fully_consistent(net) {
            return; // NC002/NC003 territory; stats would read garbage shapes.
        }
        let per_layer = net.layer_stats();
        for (node, ls) in net.nodes().iter().zip(&per_layer) {
            if let Some((flops, params)) = expected_weighted_cost(net, node) {
                if (ls.flops, ls.params) != (flops, params) {
                    out.push(Diagnostic::new(
                        Code::NC010,
                        node_span(node),
                        format!(
                            "stats report {} FLOPs / {} params but the {} formula gives \
                             {flops} / {params}",
                            ls.flops,
                            ls.params,
                            node.kind().mnemonic()
                        ),
                    ));
                }
                if flops == 0 || params == 0 {
                    out.push(Diagnostic::new(
                        Code::NC010,
                        node_span(node),
                        "weighted layer has zero FLOPs or parameters (collapsed spatial \
                         extent?)",
                    ));
                }
            }
            let elements = net.shape(node.id()).elements() as u64;
            if ls.output_elements != elements {
                out.push(Diagnostic::new(
                    Code::NC010,
                    node_span(node),
                    format!(
                        "stats report {} output elements but the shape holds {elements}",
                        ls.output_elements
                    ),
                ));
            }
        }
        let totals = net.stats();
        let flops_sum: u64 = per_layer.iter().map(|l| l.flops).sum();
        let params_sum: u64 = per_layer.iter().map(|l| l.params).sum();
        if totals.total_flops != flops_sum || totals.total_params != params_sum {
            out.push(Diagnostic::new(
                Code::NC010,
                GraphSpan::Network,
                format!(
                    "aggregate stats ({} FLOPs, {} params) disagree with the per-layer sum \
                     ({flops_sum}, {params_sum})",
                    totals.total_flops, totals.total_params
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// NC011 fingerprint-stability
// ---------------------------------------------------------------------------

struct FingerprintStability;

impl Rule for FingerprintStability {
    fn code(&self) -> Code {
        Code::NC011
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        let first = net.structural_fingerprint();
        let again = net.structural_fingerprint();
        let cloned = net.clone().structural_fingerprint();
        if first != again || first != cloned {
            out.push(Diagnostic::new(
                Code::NC011,
                GraphSpan::Network,
                format!(
                    "structural fingerprint is unstable: {first:#018x} vs {again:#018x} \
                     (clone {cloned:#018x})"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// NC012 estimator-features
// ---------------------------------------------------------------------------

struct EstimatorFeatures;

impl Rule for EstimatorFeatures {
    fn code(&self) -> Code {
        Code::NC012
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        if !shapes_fully_consistent(net) {
            return; // NC002/NC003 territory.
        }
        let bs = net.backbone_stats();
        for (value, feature) in [
            (bs.total_flops, "total FLOPs"),
            (bs.total_params, "total parameters"),
            (bs.weighted_layers, "weighted-layer count"),
        ] {
            if value == 0 {
                out.push(Diagnostic::new(
                    Code::NC012,
                    GraphSpan::Network,
                    format!(
                        "backbone {feature} is zero; the latency SVR would see a degenerate \
                         feature"
                    ),
                ));
            }
        }
        if bs.total_filter_size == 0 {
            // Legitimate for pure-dense networks, so only a note.
            out.push(Diagnostic {
                code: Code::NC012,
                severity: Severity::Note,
                span: GraphSpan::Network,
                message: "backbone has no convolution kernels; the filter-size feature is \
                          zero"
                    .to_owned(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// NC013–NC016 multi-exit rules
// ---------------------------------------------------------------------------

/// `true` when every exit's `[head_start, output]` range is inside the
/// graph and not inverted. Rules that *walk* exit ranges use this to defer
/// to NC013 (which owns the report) instead of indexing blindly.
fn exit_ranges_sane(net: &Network) -> bool {
    net.exits()
        .iter()
        .all(|e| e.output().index() < net.len() && e.head_start() <= e.output())
}

fn exit_span(net: &Network, k: usize) -> GraphSpan {
    GraphSpan::Head {
        start: net.exits()[k].head_start(),
    }
}

struct ExitHeadStructure;

impl Rule for ExitHeadStructure {
    fn code(&self) -> Code {
        Code::NC013
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        if net.exits().is_empty() {
            return; // Single-head and raw networks have no exit table.
        }
        let n = net.len();
        for (k, exit) in net.exits().iter().enumerate() {
            if exit.output().index() >= n || exit.head_start() > exit.output() {
                out.push(Diagnostic::new(
                    Code::NC013,
                    GraphSpan::Network,
                    format!(
                        "exit {k} spans [{}, {}], not a forward range inside the {n}-node \
                         graph",
                        exit.head_start(),
                        exit.output()
                    ),
                ));
                continue;
            }
            let range = exit.head_start().index()..=exit.output().index();
            if !net.nodes()[range].iter().any(|n| n.kind().is_weighted()) {
                out.push(Diagnostic::new(
                    Code::NC013,
                    exit_span(net, k),
                    format!("exit {k} contains no weighted layer (no conv or dense)"),
                ));
            }
            if exit.output().index() < net.shapes().len() {
                let shape = net.shape(exit.output());
                if !matches!(shape, Shape::Vector { .. }) {
                    out.push(Diagnostic::new(
                        Code::NC013,
                        exit_span(net, k),
                        format!("exit {k} produces {shape}, not a class-probability vector"),
                    ));
                }
            }
        }
        // Every exit must classify into the same label set.
        let classes: Vec<Option<usize>> = net
            .exits()
            .iter()
            .map(|e| match net.shapes().get(e.output().index()) {
                Some(Shape::Vector { n }) => Some(*n),
                _ => None,
            })
            .collect();
        if let Some(first) = classes.first().copied().flatten() {
            for (k, c) in classes.iter().enumerate().skip(1) {
                if let Some(c) = c {
                    if *c != first {
                        out.push(Diagnostic::new(
                            Code::NC013,
                            exit_span(net, k),
                            format!("exit {k} classifies into {c} classes but exit 0 into {first}"),
                        ));
                    }
                }
            }
        }
    }
}

struct ExitMonotonicity;

impl Rule for ExitMonotonicity {
    fn code(&self) -> Code {
        Code::NC014
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        if net.exits().is_empty() {
            return;
        }
        for (k, pair) in net.exits().windows(2).enumerate() {
            if pair[1].head_start() <= pair[0].head_start() {
                out.push(Diagnostic::new(
                    Code::NC014,
                    GraphSpan::Network,
                    format!(
                        "exit {} starts at {}, not after exit {k} at {} — exits must be \
                         stored shallowest-first",
                        k + 1,
                        pair[1].head_start(),
                        pair[0].head_start()
                    ),
                ));
            }
        }
        let deepest = net.exits().last().expect("checked non-empty");
        if deepest.output() != net.output() {
            out.push(Diagnostic::new(
                Code::NC014,
                GraphSpan::Network,
                format!(
                    "deepest exit produces {} but the graph output is {} — the full-depth \
                     exit must be the network's answer",
                    deepest.output(),
                    net.output()
                ),
            ));
        }
    }
}

struct ExitCoverage;

impl Rule for ExitCoverage {
    fn code(&self) -> Code {
        Code::NC015
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        if net.exits().is_empty() {
            return;
        }
        // Every block boundary carries exactly one head.
        let nb = net.num_blocks();
        let mut claims = vec![0usize; nb];
        for (k, exit) in net.exits().iter().enumerate() {
            match claims.get_mut(exit.block()) {
                Some(c) => *c += 1,
                None => out.push(Diagnostic::new(
                    Code::NC015,
                    exit_span(net, k),
                    format!(
                        "exit {k} claims block #{}, but the network has {nb} blocks",
                        exit.block()
                    ),
                )),
            }
        }
        for (bi, &count) in claims.iter().enumerate() {
            if count != 1 {
                out.push(Diagnostic::new(
                    Code::NC015,
                    block_span(bi, net),
                    format!("block boundary carries {count} exit heads, not exactly one"),
                ));
            }
        }
        // Each exit's entry node must consume its claimed block's output.
        if !exit_ranges_sane(net) {
            return; // NC013 territory.
        }
        for (k, exit) in net.exits().iter().enumerate() {
            let Some(block) = net.blocks().get(exit.block()) else {
                continue; // reported above
            };
            if net.head_start().is_some_and(|h| exit.head_start() < h) {
                continue; // Intrusion into the backbone is NC016's finding.
            }
            let entry = &net.nodes()[exit.head_start().index()];
            if entry.inputs().iter().any(|&inp| inp != block.output()) {
                out.push(Diagnostic::new(
                    Code::NC015,
                    exit_span(net, k),
                    format!(
                        "exit {k} claims block #{} `{}` but its entry node `{}` does not \
                         tap that block's output {}",
                        exit.block(),
                        block.name(),
                        entry.name(),
                        block.output()
                    ),
                ));
            }
        }
    }
}

struct ExitIsolation;

impl Rule for ExitIsolation {
    fn code(&self) -> Code {
        Code::NC016
    }

    fn check(&self, net: &Network, out: &mut Vec<Diagnostic>) {
        if net.exits().is_empty() {
            return;
        }
        if !exit_ranges_sane(net) {
            return; // NC013 territory.
        }
        // Exit heads live in the head region, after every backbone node.
        if let Some(head) = net.head_start() {
            for (k, exit) in net.exits().iter().enumerate() {
                if exit.head_start() < head {
                    out.push(Diagnostic::new(
                        Code::NC016,
                        exit_span(net, k),
                        format!(
                            "exit {k} starts at {}, inside the backbone (head region starts \
                             at {head})",
                            exit.head_start()
                        ),
                    ));
                }
            }
        }
        // Ranges are pairwise disjoint: no node computes for two exits.
        for a in 0..net.exits().len() {
            for b in a + 1..net.exits().len() {
                let (ea, eb) = (net.exits()[a], net.exits()[b]);
                if ea.head_start() <= eb.output() && eb.head_start() <= ea.output() {
                    out.push(Diagnostic::new(
                        Code::NC016,
                        exit_span(net, b),
                        format!(
                            "exit {b} [{}, {}] overlaps exit {a} [{}, {}]",
                            eb.head_start(),
                            eb.output(),
                            ea.head_start(),
                            ea.output()
                        ),
                    ));
                }
            }
        }
        // Exits are pure sinks: nothing outside an exit consumes its nodes,
        // so detaching heads (backbone()) can never sever the backbone.
        let mut owner = vec![None::<usize>; net.len()];
        for (k, exit) in net.exits().iter().enumerate() {
            for slot in &mut owner[exit.head_start().index()..=exit.output().index()] {
                slot.get_or_insert(k);
            }
        }
        for (pos, node) in net.nodes().iter().enumerate() {
            let consumer = owner[pos];
            for &inp in node.inputs() {
                let Some(Some(k)) = owner.get(inp.index()).copied() else {
                    continue;
                };
                if consumer != Some(k) {
                    out.push(Diagnostic::new(
                        Code::NC016,
                        GraphSpan::Edge {
                            from: inp,
                            to: node.id(),
                            to_name: node.name().to_owned(),
                        },
                        format!("edge consumes exit {k}'s interior from outside the exit"),
                    ));
                }
            }
        }
        // Stripping the heads must be deterministic: the backbone's
        // fingerprint is the memo-cache key joint training is keyed on.
        // `backbone()` walks edges, so only a fully consistent graph can be
        // stripped without panicking (broken ones are NC002/NC003 findings).
        let deepest_entry =
            &net.nodes()[net.exits().last().expect("non-empty").head_start().index()];
        if !shapes_fully_consistent(net) || deepest_entry.inputs().is_empty() {
            return;
        }
        let first = net.backbone().structural_fingerprint();
        let again = net.backbone().structural_fingerprint();
        if first != again {
            out.push(Diagnostic::new(
                Code::NC016,
                GraphSpan::Network,
                format!(
                    "backbone fingerprint is unstable under exit-head detachment: \
                     {first:#018x} vs {again:#018x}"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

/// Runs a registry of [`Rule`]s over a network and assembles a [`Report`].
///
/// # Example
///
/// ```
/// use netcut_graph::zoo;
/// use netcut_verify::Analyzer;
///
/// let report = Analyzer::new().analyze(&zoo::mobilenet_v1(0.25));
/// assert!(report.is_clean());
/// ```
pub struct Analyzer {
    rules: Vec<Box<dyn Rule>>,
}

impl Analyzer {
    /// The default registry: every structural rule (NC001–NC008,
    /// NC010–NC016, the multi-exit rules included). The head-spec rule
    /// (NC009) needs an expected [`HeadSpec`]; add it via
    /// [`Analyzer::with_expected_head`].
    pub fn new() -> Self {
        Analyzer {
            rules: vec![
                Box::new(EmptyNetwork),
                Box::new(TopologicalOrder),
                Box::new(ShapeConsistency),
                Box::new(Reachability),
                Box::new(BlockStructure),
                Box::new(BlockBoundary),
                Box::new(CutpointMonotonicity),
                Box::new(HeadStructure),
                Box::new(StatsCoherence),
                Box::new(FingerprintStability),
                Box::new(EstimatorFeatures),
                Box::new(ExitHeadStructure),
                Box::new(ExitMonotonicity),
                Box::new(ExitCoverage),
                Box::new(ExitIsolation),
            ],
        }
    }

    /// The default registry plus [`HeadSpecRule`] checking the attached head
    /// against `spec` (NC009).
    pub fn with_expected_head(spec: HeadSpec) -> Self {
        Analyzer::new().with_rule(Box::new(HeadSpecRule::new(spec)))
    }

    /// Appends a custom rule to the registry.
    #[must_use]
    pub fn with_rule(mut self, rule: Box<dyn Rule>) -> Self {
        self.rules.push(rule);
        self
    }

    /// Runs every rule over `net`, in registry order.
    ///
    /// Emits a `verify.analyze` tracing span and bumps the
    /// `verify.diagnostic` counter by the number of findings.
    pub fn analyze(&self, net: &Network) -> Report {
        let _span = obs::span("verify.analyze");
        let mut diagnostics = Vec::new();
        for rule in &self.rules {
            rule.check(net, &mut diagnostics);
        }
        if !diagnostics.is_empty() {
            obs::counter_add("verify.diagnostic", diagnostics.len() as u64);
        }
        Report {
            network: net.name().to_owned(),
            fingerprint: net.structural_fingerprint(),
            diagnostics,
        }
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcut_graph::{Activation, NetworkBuilder, NodeId, Padding};

    fn tiny() -> Network {
        let mut b = NetworkBuilder::new("tiny", Shape::map(3, 32, 32));
        let x = b.input();
        b.begin_block("b1");
        let x = b.conv_bn_relu(x, 8, 3, 2, Padding::Same, "c1");
        b.end_block(x).unwrap();
        b.mark_head_start();
        let g = b.global_avg_pool(x, "gap");
        let d = b.dense(g, 5, "fc");
        let s = b.activation(d, Activation::Softmax, "softmax");
        b.finish(s).unwrap()
    }

    #[test]
    fn builder_output_is_clean() {
        let report = Analyzer::new().analyze(&tiny());
        assert!(report.is_clean(), "{}", report.render_text());
        assert_eq!(report.summary().total(), 0);
    }

    #[test]
    fn head_spec_rule_accepts_matching_head() {
        let net = tiny();
        let spec = HeadSpec {
            hidden: vec![],
            classes: 5,
        };
        let report = Analyzer::with_expected_head(spec).analyze(&net);
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn head_spec_rule_rejects_class_mismatch() {
        let net = tiny();
        let report = Analyzer::with_expected_head(HeadSpec::with_classes(7)).analyze(&net);
        assert!(!report.is_clean());
        assert!(report.diagnostics().iter().all(|d| d.code == Code::NC009));
    }

    #[test]
    fn empty_network_is_reported() {
        let net = Network::from_parts(
            "empty",
            Shape::map(3, 8, 8),
            vec![],
            vec![],
            NodeId::new(0),
            vec![],
            None,
        );
        let report = Analyzer::new().analyze(&net);
        assert!(report.diagnostics().iter().any(|d| d.code == Code::NC001));
    }
}
