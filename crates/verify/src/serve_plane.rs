//! Serve-plane static analysis: SV-rule registry over the offline serving
//! artifacts — exit ladders, batch-scaling curves, fault plans, and SLO
//! policies.
//!
//! The graph-IR analyzer ([`crate::Analyzer`]) checks what a network *is*;
//! this module checks what the serving stack will *do* with it before a
//! request ever arrives. `netcut-verify` sits below `netcut-serve` in the
//! crate DAG, so the rules run over a plain data model ([`ServeArtifact`])
//! that the serve crate extracts from a built `Scenario`. The same
//! defensive contract as the NC rules applies: rules never panic on
//! arbitrarily broken artifacts, and each invariant is owned by exactly one
//! code (a rule defers when the broken input belongs to another rule).
//!
//! The stable `SV001`–`SV013` codes live in [`Code`](crate::Code) next to
//! the NC table; the full rule table is DESIGN.md §16.

use crate::diagnostic::{Code, Diagnostic, GraphSpan, Report};
use netcut_obs as obs;

/// Parts-per-million scale used by batch curves and SLO rates.
pub const PPM: u64 = 1_000_000;

/// One exit-table rung as the serve plane sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungSpec {
    /// Rung name (usually the TRN variant, e.g. `"mobilenet_v2@cut12"`).
    pub name: String,
    /// Predicted service latency at batch size 1, integer microseconds.
    pub latency_us: u64,
    /// Predicted accuracy in parts per million.
    pub accuracy_ppm: u64,
}

/// One shard's degradation ladder plus its batch-scaling curves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderSpec {
    /// Device the ladder was explored on (`"jetson_xavier"`).
    pub device: String,
    /// Rungs, shallowest (fastest) first.
    pub rungs: Vec<RungSpec>,
    /// Per-rung batch curves: `curves[r][n]` is the predicted cost of a
    /// batch of `n + 1` requests on rung `r`, in ppm of the rung's
    /// batch-1 latency. Empty when batching is disabled.
    pub batch_curves: Vec<Vec<u64>>,
    /// A pinned exit (`--exit-table N`), if any.
    pub exit_pin: Option<usize>,
}

/// Fault classes, mirroring `netcut_serve::FaultKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultClass {
    /// Multiplicative service-time inflation.
    Jitter,
    /// A device stall: requests in the window wait it out.
    Stall,
    /// Admission drops.
    Drop,
}

impl FaultClass {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Jitter => "jitter",
            FaultClass::Stall => "stall",
            FaultClass::Drop => "drop",
        }
    }
}

/// One fault window on the virtual-time axis, active over
/// `[start_us, end_us)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSpec {
    /// What the window injects.
    pub class: FaultClass,
    /// First active microsecond.
    pub start_us: u64,
    /// First microsecond past the window.
    pub end_us: u64,
}

/// One shard of the serve plane: its ladder and its slice of the fault
/// timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Roster name, unique per shard (`"shard0:jetson_xavier"`).
    pub name: String,
    /// The ladder this shard serves from.
    pub ladder: LadderSpec,
    /// Fault windows this shard owns.
    pub fault_windows: Vec<WindowSpec>,
}

/// The SLO alerting policy, mirroring `netcut_obs::SloPolicy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Deadline-miss budget per window, ppm of arrivals.
    pub miss_budget_ppm: u64,
    /// Burn rate (ppm of budget consumption speed) at which OBS001 fires.
    pub burn_alert_ppm: u64,
    /// Predicted-vs-observed residual drift (ppm) at which OBS002 fires.
    pub drift_alert_ppm: u64,
    /// Residual samples required before drift is trusted.
    pub min_drift_samples: u64,
    /// Fleet arrivals required before a window counts as loaded.
    pub min_window_arrivals: u64,
}

/// The closed-loop recalibration policy, mirroring
/// `netcut_serve::RecalibConfig`. Present only for scenarios run with
/// `--recalibrate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecalibSpec {
    /// Residual drift (ppm) that arms a recalibration.
    pub drift_ppm: u64,
    /// Minimum virtual time between hot-swaps of one shard, microseconds.
    pub cooldown_us: u64,
    /// Controller watermark cadence, virtual microseconds.
    pub watermark_us: u64,
    /// Observed samples a shard needs before its drift is trusted.
    pub min_samples: u64,
    /// Bounded recent-sample window the refit draws from.
    pub window: u64,
}

/// Everything the serve plane commits to before the first request: the
/// shard roster with ladders and fault plans, the global fault timeline
/// those plans partition, the SLO policy watching the run, and — for
/// closed-loop runs — the recalibration policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArtifact {
    /// Scenario name, used as the report subject (`"serve:baseline"`).
    pub scenario: String,
    /// Scenario duration in virtual microseconds.
    pub duration_us: u64,
    /// Request deadline in microseconds.
    pub deadline_us: u64,
    /// The shard roster.
    pub shards: Vec<ShardSpec>,
    /// The scenario-wide fault timeline before shard ownership is
    /// assigned; per-shard windows must partition it.
    pub global_faults: Vec<WindowSpec>,
    /// The SLO policy.
    pub slo: SloSpec,
    /// The recalibration policy; `None` when the loop is open
    /// (`--no-recalibrate`), which leaves the fingerprint bit-identical
    /// to pre-recalibration artifacts.
    pub recalib: Option<RecalibSpec>,
}

impl ServeArtifact {
    /// Deterministic FNV-1a fingerprint over the canonical encoding of
    /// every field, for report provenance (the serve-plane analogue of the
    /// graph structural fingerprint).
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.scenario);
        h.u64(self.duration_us);
        h.u64(self.deadline_us);
        for shard in &self.shards {
            h.str(&shard.name);
            h.str(&shard.ladder.device);
            for r in &shard.ladder.rungs {
                h.str(&r.name);
                h.u64(r.latency_us);
                h.u64(r.accuracy_ppm);
            }
            for curve in &shard.ladder.batch_curves {
                h.u64(curve.len() as u64);
                for &v in curve {
                    h.u64(v);
                }
            }
            h.u64(shard.ladder.exit_pin.map_or(u64::MAX, |p| p as u64));
            for w in &shard.fault_windows {
                h.window(w);
            }
        }
        for w in &self.global_faults {
            h.window(w);
        }
        h.u64(self.slo.miss_budget_ppm);
        h.u64(self.slo.burn_alert_ppm);
        h.u64(self.slo.drift_alert_ppm);
        h.u64(self.slo.min_drift_samples);
        h.u64(self.slo.min_window_arrivals);
        // Open-loop artifacts hash nothing here, so their fingerprints
        // survive the field addition unchanged.
        if let Some(r) = &self.recalib {
            h.byte(1);
            h.u64(r.drift_ppm);
            h.u64(r.cooldown_us);
            h.u64(r.watermark_us);
            h.u64(r.min_samples);
            h.u64(r.window);
        }
        h.0
    }
}

/// FNV-1a, 64-bit. Not a crypto hash — a stable provenance stamp.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
    fn window(&mut self, w: &WindowSpec) {
        self.byte(w.class as u8);
        self.u64(w.start_us);
        self.u64(w.end_us);
    }
}

/// One serve-plane rule: examines an artifact and appends any findings.
///
/// The same contract as the graph-IR [`Rule`](crate::Rule): tolerate
/// arbitrarily malformed artifacts without panicking, and defer to the
/// owning rule instead of double-reporting.
pub trait ServeRule: Send + Sync {
    /// The stable code this rule reports under.
    fn code(&self) -> Code;

    /// Checks `artifact`, appending findings to `out`.
    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>);
}

fn shard_span(shard: &ShardSpec) -> GraphSpan {
    GraphSpan::Shard {
        name: shard.name.clone(),
    }
}

fn rung_span(shard: &ShardSpec, index: usize) -> GraphSpan {
    GraphSpan::Rung {
        shard: shard.name.clone(),
        index,
    }
}

/// `true` when the ladder's rungs are strictly ascending in latency with no
/// zero-latency rung — rules that consume the ordering use this to defer to
/// SV001.
fn ladder_strictly_ordered(ladder: &LadderSpec) -> bool {
    ladder.rungs.iter().all(|r| r.latency_us > 0)
        && ladder
            .rungs
            .windows(2)
            .all(|w| w[0].latency_us < w[1].latency_us)
}

// ---------------------------------------------------------------------------
// Ladder soundness (SV001–SV003)
// ---------------------------------------------------------------------------

/// SV001 — rungs strictly ascending in predicted latency, none free.
struct LadderOrder;

impl ServeRule for LadderOrder {
    fn code(&self) -> Code {
        Code::SV001
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        for shard in &artifact.shards {
            for (i, rung) in shard.ladder.rungs.iter().enumerate() {
                if rung.latency_us == 0 {
                    out.push(Diagnostic::new(
                        Code::SV001,
                        rung_span(shard, i),
                        format!("rung `{}` predicts zero latency", rung.name),
                    ));
                }
                if i > 0 {
                    let prev = &shard.ladder.rungs[i - 1];
                    if rung.latency_us <= prev.latency_us {
                        out.push(Diagnostic::new(
                            Code::SV001,
                            rung_span(shard, i),
                            format!(
                                "rung `{}` ({} µs) does not strictly exceed \
                                 `{}` ({} µs); the selector needs a strict \
                                 latency order",
                                rung.name, rung.latency_us, prev.name, prev.latency_us
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// SV002 — the exit table is non-empty and any pin addresses it.
struct ExitTableRange;

impl ServeRule for ExitTableRange {
    fn code(&self) -> Code {
        Code::SV002
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        for shard in &artifact.shards {
            let exits = shard.ladder.rungs.len();
            if exits == 0 {
                out.push(Diagnostic::new(
                    Code::SV002,
                    shard_span(shard),
                    "exit table is empty: no candidate survived the Pareto filter",
                ));
            }
            if let Some(pin) = shard.ladder.exit_pin {
                if pin >= exits {
                    out.push(Diagnostic::new(
                        Code::SV002,
                        shard_span(shard),
                        format!("exit pin {pin} is out of range: the table has {exits} exit(s)"),
                    ));
                }
            }
        }
    }
}

/// SV003 — no rung strictly dominated (slower *and* less accurate) by an
/// earlier rung. Defers to SV001 when the latency order is already broken.
struct DominatedRung;

impl ServeRule for DominatedRung {
    fn code(&self) -> Code {
        Code::SV003
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        for shard in &artifact.shards {
            if !ladder_strictly_ordered(&shard.ladder) {
                continue; // SV001 owns the report
            }
            let mut best_ppm = 0u64;
            let mut best_name = "";
            for (i, rung) in shard.ladder.rungs.iter().enumerate() {
                if i > 0 && rung.accuracy_ppm < best_ppm {
                    out.push(Diagnostic::new(
                        Code::SV003,
                        rung_span(shard, i),
                        format!(
                            "rung `{}` is dominated: slower than `{}` yet less \
                             accurate ({} < {} ppm)",
                            rung.name, best_name, rung.accuracy_ppm, best_ppm
                        ),
                    ));
                }
                if rung.accuracy_ppm >= best_ppm {
                    best_ppm = rung.accuracy_ppm;
                    best_name = &rung.name;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Batch-curve sanity (SV004–SV006)
// ---------------------------------------------------------------------------

/// SV004 — curve roster shape: one curve per rung, none empty, batch-1 cost
/// pinned to exactly `PPM`.
struct BatchCurveShape;

impl ServeRule for BatchCurveShape {
    fn code(&self) -> Code {
        Code::SV004
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        for shard in &artifact.shards {
            let curves = &shard.ladder.batch_curves;
            if curves.is_empty() {
                continue; // batching disabled — nothing to check
            }
            if curves.len() != shard.ladder.rungs.len() {
                out.push(Diagnostic::new(
                    Code::SV004,
                    shard_span(shard),
                    format!(
                        "{} batch curve(s) for {} rung(s); every rung needs \
                         its own curve",
                        curves.len(),
                        shard.ladder.rungs.len()
                    ),
                ));
            }
            for (r, curve) in curves.iter().enumerate() {
                if curve.is_empty() {
                    out.push(Diagnostic::new(
                        Code::SV004,
                        rung_span(shard, r),
                        "batch curve is empty: not even the batch-1 point",
                    ));
                } else if curve[0] != PPM {
                    out.push(Diagnostic::new(
                        Code::SV004,
                        rung_span(shard, r),
                        format!(
                            "batch-1 cost is {} ppm, not {PPM}: a singleton \
                             batch must cost exactly one request",
                            curve[0]
                        ),
                    ));
                }
            }
        }
    }
}

/// SV005 — curves nondecreasing and at most linear for batch ≥ 2. Skips
/// empty curves (SV004 owns those).
struct BatchCurveScaling;

impl ServeRule for BatchCurveScaling {
    fn code(&self) -> Code {
        Code::SV005
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        for shard in &artifact.shards {
            for (r, curve) in shard.ladder.batch_curves.iter().enumerate() {
                for n in 1..curve.len() {
                    let batch = (n + 1) as u64;
                    if curve[n] < curve[n - 1] {
                        out.push(Diagnostic::new(
                            Code::SV005,
                            rung_span(shard, r),
                            format!(
                                "batch {batch} costs {} ppm, less than batch \
                                 {} at {} ppm: adding a request cannot shrink \
                                 the batch",
                                curve[n],
                                batch - 1,
                                curve[n - 1]
                            ),
                        ));
                    }
                    if curve[n] > batch.saturating_mul(PPM) {
                        out.push(Diagnostic::new(
                            Code::SV005,
                            rung_span(shard, r),
                            format!(
                                "batch {batch} costs {} ppm, above the linear \
                                 ceiling {} ppm: batching must never lose to \
                                 serial dispatch",
                                curve[n],
                                batch * PPM
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// SV006 — shards on the same device carry identical ladders.
struct RosterConsistency;

impl ServeRule for RosterConsistency {
    fn code(&self) -> Code {
        Code::SV006
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        for (i, shard) in artifact.shards.iter().enumerate() {
            if let Some(first) = artifact.shards[..i]
                .iter()
                .find(|s| s.ladder.device == shard.ladder.device)
            {
                if first.ladder != shard.ladder {
                    out.push(Diagnostic::new(
                        Code::SV006,
                        shard_span(shard),
                        format!(
                            "ladder disagrees with `{}` on the same device \
                             `{}`: identical hardware must predict identical \
                             latencies",
                            first.name, shard.ladder.device
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-plan well-formedness (SV007–SV009)
// ---------------------------------------------------------------------------

/// Every (owner, plan) pair the fault rules walk: the global timeline plus
/// each shard's slice.
fn fault_plans(artifact: &ServeArtifact) -> Vec<(String, &[WindowSpec])> {
    let mut plans: Vec<(String, &[WindowSpec])> =
        vec![("global".to_owned(), artifact.global_faults.as_slice())];
    for shard in &artifact.shards {
        plans.push((shard.name.clone(), shard.fault_windows.as_slice()));
    }
    plans
}

/// SV007 — windows non-empty and inside the scenario duration.
struct FaultWindowBounds;

impl ServeRule for FaultWindowBounds {
    fn code(&self) -> Code {
        Code::SV007
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        for (owner, windows) in fault_plans(artifact) {
            for (i, w) in windows.iter().enumerate() {
                let span = GraphSpan::Fault {
                    shard: owner.clone(),
                    index: i,
                };
                if w.start_us >= w.end_us {
                    out.push(Diagnostic::new(
                        Code::SV007,
                        span,
                        format!(
                            "{} window [{}, {}) is empty or inverted",
                            w.class.as_str(),
                            w.start_us,
                            w.end_us
                        ),
                    ));
                } else if w.end_us > artifact.duration_us {
                    out.push(Diagnostic::new(
                        Code::SV007,
                        span,
                        format!(
                            "{} window [{}, {}) extends past the scenario \
                             duration of {} µs",
                            w.class.as_str(),
                            w.start_us,
                            w.end_us,
                            artifact.duration_us
                        ),
                    ));
                }
            }
        }
    }
}

/// SV008 — same-class windows of one plan never overlap. Windows SV007
/// already rejected (empty/inverted) are skipped.
struct FaultWindowOverlap;

impl ServeRule for FaultWindowOverlap {
    fn code(&self) -> Code {
        Code::SV008
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        for (owner, windows) in fault_plans(artifact) {
            for class in [FaultClass::Jitter, FaultClass::Stall, FaultClass::Drop] {
                let mut of_class: Vec<(usize, &WindowSpec)> = windows
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| w.class == class && w.start_us < w.end_us)
                    .collect();
                of_class.sort_by_key(|(_, w)| (w.start_us, w.end_us));
                for pair in of_class.windows(2) {
                    let (_, a) = pair[0];
                    let (bi, b) = pair[1];
                    if b.start_us < a.end_us {
                        out.push(Diagnostic::new(
                            Code::SV008,
                            GraphSpan::Fault {
                                shard: owner.clone(),
                                index: bi,
                            },
                            format!(
                                "{} window [{}, {}) overlaps [{}, {}): the \
                                 injected magnitude would depend on iteration \
                                 order",
                                class.as_str(),
                                b.start_us,
                                b.end_us,
                                a.start_us,
                                a.end_us
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// SV009 — per-shard plans partition the global timeline: every global
/// window owned by exactly one shard, every shard window traceable to a
/// global one. Windows match on (class, start) — extent errors are SV007's.
struct FaultPartition;

impl ServeRule for FaultPartition {
    fn code(&self) -> Code {
        Code::SV009
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        let key = |w: &WindowSpec| (w.class, w.start_us);
        for (gi, global) in artifact.global_faults.iter().enumerate() {
            let owners: Vec<&str> = artifact
                .shards
                .iter()
                .filter(|s| s.fault_windows.iter().any(|w| key(w) == key(global)))
                .map(|s| s.name.as_str())
                .collect();
            if owners.len() != 1 {
                out.push(Diagnostic::new(
                    Code::SV009,
                    GraphSpan::Fault {
                        shard: "global".to_owned(),
                        index: gi,
                    },
                    format!(
                        "global {} window at {} µs is owned by {} shard(s) \
                         ({:?}); the shard plans must partition the timeline",
                        global.class.as_str(),
                        global.start_us,
                        owners.len(),
                        owners
                    ),
                ));
            }
        }
        for shard in &artifact.shards {
            for (i, w) in shard.fault_windows.iter().enumerate() {
                if !artifact.global_faults.iter().any(|g| key(g) == key(w)) {
                    out.push(Diagnostic::new(
                        Code::SV009,
                        GraphSpan::Fault {
                            shard: shard.name.clone(),
                            index: i,
                        },
                        format!(
                            "{} window at {} µs does not trace back to the \
                             global timeline",
                            w.class.as_str(),
                            w.start_us
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SLO-policy feasibility (SV010–SV012)
// ---------------------------------------------------------------------------

/// SV010 — the miss budget is a usable rate: positive and at most `PPM`.
struct SloBudget;

impl ServeRule for SloBudget {
    fn code(&self) -> Code {
        Code::SV010
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        let budget = artifact.slo.miss_budget_ppm;
        if budget == 0 {
            out.push(Diagnostic::new(
                Code::SV010,
                GraphSpan::SloPolicy,
                "miss budget is zero: a single miss would page instantly",
            ));
        } else if budget > PPM {
            out.push(Diagnostic::new(
                Code::SV010,
                GraphSpan::SloPolicy,
                format!("miss budget {budget} ppm exceeds {PPM}: not a rate"),
            ));
        }
    }
}

/// SV011 — thresholds ordered: the burn alert sits at or above the
/// on-budget line, and the drift/sample/arrival floors are nonzero.
struct SloThresholdOrder;

impl ServeRule for SloThresholdOrder {
    fn code(&self) -> Code {
        Code::SV011
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        let slo = &artifact.slo;
        if slo.burn_alert_ppm < PPM {
            out.push(Diagnostic::new(
                Code::SV011,
                GraphSpan::SloPolicy,
                format!(
                    "burn alert at {} ppm is below the on-budget line {PPM}: \
                     every within-budget window would page",
                    slo.burn_alert_ppm
                ),
            ));
        }
        if slo.drift_alert_ppm == 0 {
            out.push(Diagnostic::new(
                Code::SV011,
                GraphSpan::SloPolicy,
                "zero drift threshold: a perfectly calibrated estimator would alert",
            ));
        }
        if slo.min_drift_samples == 0 {
            out.push(Diagnostic::new(
                Code::SV011,
                GraphSpan::SloPolicy,
                "zero drift-sample floor: drift would alert on no evidence",
            ));
        }
        if slo.min_window_arrivals == 0 {
            out.push(Diagnostic::new(
                Code::SV011,
                GraphSpan::SloPolicy,
                "zero arrival floor: every empty window on an idle fleet would \
                 count as loaded",
            ));
        }
    }
}

/// SV012 — every stable `OBS0xx` alert code stays reachable under the
/// policy constants.
struct AlertReachability;

impl ServeRule for AlertReachability {
    fn code(&self) -> Code {
        Code::SV012
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        let slo = &artifact.slo;
        // The hottest window possible misses every arrival; its burn rate is
        // PPM/budget expressed in ppm. A threshold above that can never trip.
        let max_burn = ((u128::from(PPM) * u128::from(PPM))
            / u128::from(slo.miss_budget_ppm.max(1)))
        .min(u128::from(u64::MAX)) as u64;
        if slo.burn_alert_ppm > max_burn {
            out.push(Diagnostic::new(
                Code::SV012,
                GraphSpan::SloPolicy,
                format!(
                    "OBS001 is unreachable: burn alert at {} ppm exceeds the \
                     all-miss burn rate of {} ppm for a {} ppm budget",
                    slo.burn_alert_ppm, max_burn, slo.miss_budget_ppm
                ),
            ));
        }
        if slo.drift_alert_ppm == u64::MAX {
            out.push(Diagnostic::new(
                Code::SV012,
                GraphSpan::SloPolicy,
                "OBS002 is unreachable: the drift threshold is saturated",
            ));
        }
        if slo.min_drift_samples == u64::MAX {
            out.push(Diagnostic::new(
                Code::SV012,
                GraphSpan::SloPolicy,
                "OBS002 is unreachable: the drift-sample floor is saturated",
            ));
        }
        if slo.min_window_arrivals == u64::MAX {
            out.push(Diagnostic::new(
                Code::SV012,
                GraphSpan::SloPolicy,
                "OBS001/OBS003 are unreachable: no window can ever count as loaded",
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// Recalibration-policy sanity (SV013)
// ---------------------------------------------------------------------------

/// SV013 — a closed-loop scenario's controller constants are usable: no
/// zero threshold/cadence/floor, the refit window holds at least the
/// sample floor, and the drift threshold is not saturated (OBS005 must
/// stay reachable). Open-loop artifacts (`recalib: None`) are skipped.
struct RecalibSanity;

impl ServeRule for RecalibSanity {
    fn code(&self) -> Code {
        Code::SV013
    }

    fn check(&self, artifact: &ServeArtifact, out: &mut Vec<Diagnostic>) {
        let Some(r) = &artifact.recalib else {
            return; // open loop — nothing to police
        };
        let finding = |msg: String| Diagnostic::new(Code::SV013, GraphSpan::RecalibPolicy, msg);
        if r.drift_ppm == 0 {
            out.push(finding(
                "zero drift threshold: a perfectly calibrated shard would re-arm \
                 every watermark"
                    .to_owned(),
            ));
        } else if r.drift_ppm == u64::MAX {
            out.push(finding(
                "OBS005 is unreachable: the recalibration drift threshold is \
                 saturated"
                    .to_owned(),
            ));
        }
        if r.cooldown_us == 0 {
            out.push(finding(
                "zero cooldown: nothing rate-limits hot-swaps, so one drifting \
                 shard could swap every watermark"
                    .to_owned(),
            ));
        }
        if r.watermark_us == 0 {
            out.push(finding(
                "zero watermark cadence: the controller would fold after every \
                 arrival"
                    .to_owned(),
            ));
        }
        if r.min_samples == 0 {
            out.push(finding(
                "zero sample floor: a refit would trigger on no evidence".to_owned(),
            ));
        }
        if r.window < r.min_samples {
            out.push(finding(format!(
                "refit window ({}) cannot hold the {} sample(s) the trigger \
                 requires",
                r.window, r.min_samples
            )));
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The serve-plane rule registry, mirroring [`crate::Analyzer`].
pub struct ServeAnalyzer {
    rules: Vec<Box<dyn ServeRule>>,
}

impl Default for ServeAnalyzer {
    fn default() -> Self {
        ServeAnalyzer::new()
    }
}

impl ServeAnalyzer {
    /// The default registry: every SV rule (SV001–SV013).
    pub fn new() -> Self {
        ServeAnalyzer {
            rules: vec![
                Box::new(LadderOrder),
                Box::new(ExitTableRange),
                Box::new(DominatedRung),
                Box::new(BatchCurveShape),
                Box::new(BatchCurveScaling),
                Box::new(RosterConsistency),
                Box::new(FaultWindowBounds),
                Box::new(FaultWindowOverlap),
                Box::new(FaultPartition),
                Box::new(SloBudget),
                Box::new(SloThresholdOrder),
                Box::new(AlertReachability),
                Box::new(RecalibSanity),
            ],
        }
    }

    /// Appends a custom rule to the registry.
    #[must_use]
    pub fn with_rule(mut self, rule: Box<dyn ServeRule>) -> Self {
        self.rules.push(rule);
        self
    }

    /// Runs every rule over `artifact`, in registry order.
    ///
    /// Emits a `verify.analyze_serve` tracing span and bumps the shared
    /// `verify.diagnostic` counter by the number of findings.
    pub fn analyze(&self, artifact: &ServeArtifact) -> Report {
        let _span = obs::span("verify.analyze_serve");
        let mut diagnostics = Vec::new();
        for rule in &self.rules {
            rule.check(artifact, &mut diagnostics);
        }
        if !diagnostics.is_empty() {
            obs::counter_add("verify.diagnostic", diagnostics.len() as u64);
        }
        Report {
            network: artifact.scenario.clone(),
            fingerprint: artifact.fingerprint(),
            diagnostics,
        }
    }
}

/// Convenience: run the default registry over one artifact.
pub fn analyze_serve(artifact: &ServeArtifact) -> Report {
    ServeAnalyzer::new().analyze(artifact)
}

/// Wraps a serve-plane *build* failure (e.g. a `LadderError` from
/// `TrnLadder::from_points` while constructing a scenario) as an SV002
/// report, so `lint` surfaces it as a diagnostic instead of a process
/// error.
pub fn build_failure_report(scenario: &str, shard: &str, message: &str) -> Report {
    Report {
        network: scenario.to_owned(),
        fingerprint: 0,
        diagnostics: vec![Diagnostic::new(
            Code::SV002,
            GraphSpan::Shard {
                name: shard.to_owned(),
            },
            message,
        )],
    }
}

/// A small, fully sound reference artifact: three shards (two on the same
/// device), three rungs with batch curves, a three-window global fault
/// timeline partitioned across the shards, and the default SLO policy.
/// The SV mutation harness and the doc examples corrupt this.
pub fn demo_artifact() -> ServeArtifact {
    let rungs = vec![
        RungSpec {
            name: "trn@cut4".to_owned(),
            latency_us: 240,
            accuracy_ppm: 851_000,
        },
        RungSpec {
            name: "trn@cut9".to_owned(),
            latency_us: 430,
            accuracy_ppm: 893_500,
        },
        RungSpec {
            name: "trn@full".to_owned(),
            latency_us: 780,
            accuracy_ppm: 901_200,
        },
    ];
    let curves = vec![
        vec![PPM, 1_700_000, 2_300_000, 2_800_000],
        vec![PPM, 1_750_000, 2_400_000, 2_950_000],
        vec![PPM, 1_800_000, 2_500_000, 3_100_000],
    ];
    let ladder = |device: &str| LadderSpec {
        device: device.to_owned(),
        rungs: rungs.clone(),
        batch_curves: curves.clone(),
        exit_pin: None,
    };
    let duration_us = 5_000_000;
    let window = |class, start_us, end_us| WindowSpec {
        class,
        start_us,
        end_us,
    };
    let global_faults = vec![
        window(FaultClass::Jitter, 500_000, 1_100_000),
        window(FaultClass::Stall, 2_000_000, 2_400_000),
        window(FaultClass::Drop, 3_250_000, 3_750_000),
    ];
    ServeArtifact {
        scenario: "serve:demo".to_owned(),
        duration_us,
        deadline_us: 900,
        shards: vec![
            ShardSpec {
                name: "shard0:jetson_xavier".to_owned(),
                ladder: ladder("jetson_xavier"),
                fault_windows: vec![global_faults[0].clone()],
            },
            ShardSpec {
                name: "shard1:jetson_xavier".to_owned(),
                ladder: ladder("jetson_xavier"),
                fault_windows: vec![global_faults[1].clone()],
            },
            ShardSpec {
                name: "shard2:jetson_nano".to_owned(),
                ladder: ladder("jetson_nano"),
                fault_windows: vec![global_faults[2].clone()],
            },
        ],
        global_faults,
        slo: SloSpec {
            miss_budget_ppm: 50_000,
            burn_alert_ppm: 2 * PPM,
            drift_alert_ppm: 150_000,
            min_drift_samples: 8,
            min_window_arrivals: 10,
        },
        recalib: Some(RecalibSpec {
            drift_ppm: 150_000,
            cooldown_us: 500_000,
            watermark_us: 100_000,
            min_samples: 8,
            window: 64,
        }),
    }
}
