//! Integration tests for the analyzer: the full zoo (plus every blockwise
//! TRN, raw and head-attached) must be clean, and each mutation class must
//! be caught with its documented `NC0xx` code.

use netcut_graph::{zoo, HeadSpec};
use netcut_verify::mutate::{self, Mutation};
use netcut_verify::{Analyzer, Code, Severity};
use std::collections::BTreeMap;

/// Every zoo architecture and every blockwise TRN — raw, with the HANDS
/// head reattached, and as a multi-exit network with a head at every block
/// boundary — passes the analyzer with zero findings of any severity.
#[test]
fn zoo_and_every_trn_are_clean() {
    let structural = Analyzer::new();
    let with_head = Analyzer::with_expected_head(HeadSpec::default());
    let mut graphs = 0usize;
    for net in zoo::extended_networks() {
        let report = structural.analyze(&net);
        assert_eq!(
            report.summary().total(),
            0,
            "{} is not clean:\n{}",
            net.name(),
            report.render_text()
        );
        graphs += 1;
        let multi = net.with_exit_heads(&HeadSpec::default());
        let report = structural.analyze(&multi);
        assert_eq!(
            report.summary().total(),
            0,
            "{} is not clean:\n{}",
            multi.name(),
            report.render_text()
        );
        graphs += 1;
        for k in 0..net.num_blocks() {
            let trn = net.cut_blocks(k).expect("zoo cutpoints are valid");
            let raw = structural.analyze(&trn);
            assert_eq!(raw.summary().total(), 0, "{}", raw.render_text());
            let headed = trn.with_head(&HeadSpec::default());
            let report = with_head.analyze(&headed);
            assert_eq!(report.summary().total(), 0, "{}", report.render_text());
            // A multi-exit network built over the *trimmed* backbone is
            // exactly what the serve ladder runs; it must verify too.
            let trn_multi = trn.with_exit_heads(&HeadSpec::default());
            let report = structural.analyze(&trn_multi);
            assert_eq!(report.summary().total(), 0, "{}", report.render_text());
            graphs += 3;
        }
    }
    // Ten architectures, dozens of cutpoints: a regression that skipped the
    // loop entirely would still "pass" without this floor.
    assert!(graphs > 100, "only analyzed {graphs} graphs");
}

/// Mutation classes whose analyzer output must contain *only* the expected
/// code — a verifier that flags everything as broken passes membership
/// checks but fails these.
fn is_exact(mutation: Mutation) -> bool {
    matches!(
        mutation,
        Mutation::DropEdge
            | Mutation::CorruptShape
            | Mutation::SpliceBlockBoundary
            | Mutation::MismatchHeadClasses
            | Mutation::MismatchExitClasses
            | Mutation::SwapExitOrder
            | Mutation::DuplicateExitBoundary
            | Mutation::IntrudeExitRange
    )
}

/// Every mutation class, applied across the zoo, produces its documented
/// diagnostic code; four classes produce it *exactly*.
#[test]
fn mutation_harness_catches_each_class() {
    let head = HeadSpec::default();
    let structural = Analyzer::new();
    let spec_checked = Analyzer::with_expected_head(head.clone());
    let mut hits: BTreeMap<&'static str, usize> = BTreeMap::new();
    for net in zoo::extended_networks() {
        for mutation in Mutation::all() {
            let expected = mutation.expected_code();
            // The head-spec rule only makes sense on a TRN carrying the
            // HANDS head; the exit-table classes need a multi-exit network;
            // every other class mutates the zoo net directly.
            let (base, analyzer) = if mutation == Mutation::MismatchHeadClasses {
                let k = net.num_blocks() / 2;
                let trn = net.cut_blocks(k).expect("valid cutpoint");
                (trn.with_head(&head), &spec_checked)
            } else if mutation.needs_exit_table() {
                (net.with_exit_heads(&head), &structural)
            } else {
                (net.clone(), &structural)
            };
            let Some(broken) = mutate::apply(&base, mutation) else {
                continue; // no site for this mutation in this network
            };
            *hits.entry(expected.as_str()).or_default() += 1;
            let report = analyzer.analyze(&broken);
            let codes: Vec<Code> = report.diagnostics().iter().map(|d| d.code).collect();
            assert!(
                codes.contains(&expected),
                "{mutation:?} on {} should raise {expected}, got:\n{}",
                net.name(),
                report.render_text()
            );
            if is_exact(mutation) {
                assert!(
                    codes.iter().all(|&c| c == expected),
                    "{mutation:?} on {} should raise only {expected}, got:\n{}",
                    net.name(),
                    report.render_text()
                );
            }
            // Error-severity mutations must fail `is_clean`; the dangling
            // branch from DropEdge is a Warning and must *not* — strict
            // mode, not validate(), is what promotes it.
            if expected.severity() == Severity::Error {
                assert!(!report.is_clean());
                assert!(report.first_error().is_some());
            } else {
                assert!(report.is_clean());
                assert!(report.summary().warnings > 0);
            }
        }
    }
    // Each class must have fired on at least one zoo network.
    for mutation in Mutation::all() {
        let code = mutation.expected_code().as_str();
        assert!(
            hits.get(code).copied().unwrap_or(0) > 0,
            "mutation class for {code} never applied to any zoo network"
        );
    }
}

/// `validate` is the migration shim: `Ok` for clean graphs, first
/// Error-severity diagnostic otherwise, and Warnings do not fail it.
#[test]
fn validate_shim_reports_first_error_only() {
    let net = zoo::mobilenet_v1(0.25);
    netcut_verify::validate(&net).expect("zoo network is valid");

    let broken = mutate::apply(&net, Mutation::CorruptShape).expect("conv exists");
    let err = netcut_verify::validate(&broken).expect_err("corrupt shape must fail");
    assert_eq!(err.code, Code::NC003);
    assert_eq!(err.severity, Severity::Error);

    // A dangling branch is Warning-severity: validate() accepts it.
    let resnet = zoo::resnet50();
    let dangling = mutate::apply(&resnet, Mutation::DropEdge).expect("residual exists");
    netcut_verify::validate(&dangling).expect("warnings do not fail validate()");
}

/// Text and JSON renderings carry the stable vocabulary consumers key on.
#[test]
fn report_renderings_are_stable() {
    let net = zoo::mobilenet_v1(0.25);
    let clean = Analyzer::new().analyze(&net);
    assert_eq!(clean.network(), net.name());
    assert_eq!(clean.fingerprint(), net.structural_fingerprint());
    let text = clean.render_text();
    assert!(text.contains("ok"), "clean text rendering: {text}");

    let broken = mutate::apply(&net, Mutation::CorruptShape).expect("conv exists");
    let report = Analyzer::new().analyze(&broken);
    let text = report.render_text();
    assert!(text.contains("error[NC003]"), "text rendering: {text}");
    assert!(text.contains("error(s)"), "verdict line: {text}");

    let json = report.to_json_lines();
    for line in json.lines() {
        assert!(line.starts_with("{\"v\":1,"), "obs envelope: {line}");
    }
    assert!(json.contains("\"verify.diagnostic\""));
    assert!(json.contains("\"verify.summary\""));
    assert!(json.contains("\"code\":\"NC003\""));
    assert!(json.contains("\"severity\":\"error\""));
    // One line per finding plus the summary line.
    assert_eq!(json.lines().count(), report.diagnostics().len() + 1);
}

/// The analyzer is deterministic: analyzing the same graph twice produces
/// identical diagnostics in identical order.
#[test]
fn analysis_is_deterministic() {
    let net = zoo::mobilenet_v2(1.0);
    let broken = mutate::apply(&net, Mutation::DropEdge).expect("residual exists");
    let a = Analyzer::new().analyze(&broken);
    let b = Analyzer::new().analyze(&broken);
    assert_eq!(a.diagnostics(), b.diagnostics());
    assert_eq!(a.fingerprint(), b.fingerprint());
}
