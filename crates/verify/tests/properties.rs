//! Property-style tests over randomly generated networks: any well-formed
//! builder output must pass the analyzer with zero errors, and stay clean
//! through the cut/reattach pipeline.
//!
//! Uses a seeded [`rand::rngs::SmallRng`] rather than proptest so the cases
//! are fully deterministic and the suite needs no shrinking machinery.

use netcut_graph::{Activation, HeadSpec, Network, NetworkBuilder, Padding, Shape};
use netcut_verify::Analyzer;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One randomly chosen backbone block, mirroring the generator used by the
/// graph crate's proptest suite.
#[derive(Debug, Clone, Copy)]
enum BlockSpec {
    Conv {
        channels: usize,
        kernel: usize,
        stride: usize,
    },
    Separable {
        channels: usize,
    },
    Residual {
        channels: usize,
    },
}

fn random_block(rng: &mut SmallRng) -> BlockSpec {
    let channels = 8 * rng.gen_range(1..=4usize);
    match rng.gen_range(0..3u8) {
        0 => BlockSpec::Conv {
            channels,
            kernel: [1, 3, 5][rng.gen_range(0..3usize)],
            stride: rng.gen_range(1..=2),
        },
        1 => BlockSpec::Separable { channels },
        _ => BlockSpec::Residual { channels },
    }
}

/// Builds a random-but-valid network from block specs.
fn build(blocks: &[BlockSpec]) -> Network {
    let mut b = NetworkBuilder::new("random", Shape::map(3, 64, 64));
    let mut x = b.input();
    for (i, spec) in blocks.iter().enumerate() {
        let name = format!("b{i}");
        b.begin_block(&name);
        match *spec {
            BlockSpec::Conv {
                channels,
                kernel,
                stride,
            } => {
                x = b.conv_bn_relu(x, channels, kernel, stride, Padding::Same, &name);
            }
            BlockSpec::Separable { channels } => {
                let d = b.depthwise_conv(x, 3, 1, Padding::Same, &format!("{name}/dw"));
                let d = b.batch_norm(d, &format!("{name}/dw_bn"));
                let d = b.activation(d, Activation::Relu, &format!("{name}/dw_relu"));
                x = b.conv_bn_relu(d, channels, 1, 1, Padding::Same, &format!("{name}/pw"));
            }
            BlockSpec::Residual { channels } => {
                let p = b.conv_bn_relu(x, channels, 1, 1, Padding::Same, &format!("{name}/proj"));
                let inner =
                    b.conv_bn_relu(p, channels, 3, 1, Padding::Same, &format!("{name}/conv"));
                x = b.add(&[p, inner], &format!("{name}/add"));
            }
        }
        b.end_block(x).expect("non-empty block");
    }
    b.finish(x).expect("random network is valid")
}

/// 64 random backbones, each analyzed raw and through every blockwise cut
/// with the HANDS head reattached: zero findings everywhere.
#[test]
fn random_networks_are_clean_through_the_pipeline() {
    let mut rng = SmallRng::seed_from_u64(0x4E43_5631); // "NCV1"
    let structural = Analyzer::new();
    let with_head = Analyzer::with_expected_head(HeadSpec::default());
    for case in 0..64 {
        let len = rng.gen_range(1..=8usize);
        let specs: Vec<BlockSpec> = (0..len).map(|_| random_block(&mut rng)).collect();
        let net = build(&specs);
        let report = structural.analyze(&net);
        assert_eq!(
            report.summary().total(),
            0,
            "case {case} ({specs:?}) not clean:\n{}",
            report.render_text()
        );
        for k in 0..net.num_blocks() {
            let trn = net.cut_blocks(k).expect("generated cutpoints are valid");
            let headed = trn.with_head(&HeadSpec::default());
            let report = with_head.analyze(&headed);
            assert_eq!(
                report.summary().total(),
                0,
                "case {case} cut at {k} not clean:\n{}",
                report.render_text()
            );
        }
    }
}

/// The validate() shim agrees with the analyzer on random networks.
#[test]
fn validate_accepts_random_networks() {
    let mut rng = SmallRng::seed_from_u64(0x4E43_5632);
    for _ in 0..32 {
        let len = rng.gen_range(1..=6usize);
        let specs: Vec<BlockSpec> = (0..len).map(|_| random_block(&mut rng)).collect();
        let net = build(&specs);
        netcut_verify::validate(&net).expect("builder output is valid");
    }
}
