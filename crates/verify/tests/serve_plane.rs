//! Serve-plane analyzer tests: the reference artifact is clean, every
//! mutation class trips exactly its documented SV code, and the
//! code↔mutation registry itself is pinned (the meta-test).

use netcut_verify::mutate::{self, Mutation, ServeMutation};
use netcut_verify::serve_plane::{self, demo_artifact};
use netcut_verify::{Code, Severity};

#[test]
fn the_demo_artifact_is_clean() {
    let artifact = demo_artifact();
    let report = serve_plane::analyze_serve(&artifact);
    assert!(
        report.summary().total() == 0,
        "reference artifact must be spotless:\n{}",
        report.render_text()
    );
    assert_eq!(report.network(), "serve:demo");
    assert_eq!(report.fingerprint(), artifact.fingerprint());
}

#[test]
fn the_fingerprint_tracks_content() {
    let artifact = demo_artifact();
    let mut tweaked = artifact.clone();
    tweaked.deadline_us += 1;
    assert_ne!(artifact.fingerprint(), tweaked.fingerprint());
    assert_eq!(artifact.fingerprint(), artifact.clone().fingerprint());
}

#[test]
fn every_serve_mutation_trips_exactly_its_code() {
    let base = demo_artifact();
    for mutation in ServeMutation::all() {
        let broken = mutate::apply_serve(&base, mutation)
            .unwrap_or_else(|| panic!("{mutation:?} must apply to the demo artifact"));
        let report = serve_plane::analyze_serve(&broken);
        let expected = mutation.expected_code();
        assert!(
            report.diagnostics().iter().any(|d| d.code == expected),
            "{mutation:?} must produce {expected}, got:\n{}",
            report.render_text()
        );
        // The serve mutations are all exact: corrupting one invariant must
        // not cascade into other rules' findings.
        for d in report.diagnostics() {
            assert_eq!(
                d.code,
                expected,
                "{mutation:?} leaked a companion finding:\n{}",
                report.render_text()
            );
        }
    }
}

#[test]
fn build_failures_surface_as_sv002() {
    let report = serve_plane::build_failure_report(
        "serve:broken",
        "shard0:jetson_xavier",
        "cannot build an exit table from zero candidates",
    );
    assert!(!report.is_clean());
    let d = report.first_error().expect("one error");
    assert_eq!(d.code, Code::SV002);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(report.network(), "serve:broken");
}

// ---------------------------------------------------------------------------
// Meta-test: the code ↔ mutation registry is a pinned, append-only table.
// ---------------------------------------------------------------------------

/// Every stable code, in table order. Append-only: entries are never
/// removed or renumbered.
const ALL_CODES: &[Code] = &[
    Code::NC001,
    Code::NC002,
    Code::NC003,
    Code::NC004,
    Code::NC005,
    Code::NC006,
    Code::NC007,
    Code::NC008,
    Code::NC009,
    Code::NC010,
    Code::NC011,
    Code::NC012,
    Code::NC013,
    Code::NC014,
    Code::NC015,
    Code::NC016,
    Code::SV001,
    Code::SV002,
    Code::SV003,
    Code::SV004,
    Code::SV005,
    Code::SV006,
    Code::SV007,
    Code::SV008,
    Code::SV009,
    Code::SV010,
    Code::SV011,
    Code::SV012,
    Code::SV013,
];

/// NC codes with no data-mutation class, each for a pinned reason. This
/// list is append-averse: shrinking it (adding a mutation) is progress,
/// growing it needs a documented impossibility argument.
///
/// * NC001 — the graph constructors reject empty node lists, so no valid
///   network can be mutated into one.
/// * NC005 / NC008 — the block/head corruptions that are expressible
///   through `from_parts` are already owned by the NC006/NC007 classes;
///   the remaining NC005/NC008 arms guard constructor-rejected states.
/// * NC010 — aggregate stats are recomputed from the node list on build,
///   so a data mutation cannot desynchronize them.
/// * NC011 — fingerprint instability is a property of the hash function,
///   not of any graph value a mutation could corrupt.
/// * NC012 — the zero-feature warning needs a degenerate *architecture*
///   (no convolutions), not a corruption of a sound one.
const UNMUTATED_NC: &[Code] = &[
    Code::NC001,
    Code::NC005,
    Code::NC008,
    Code::NC010,
    Code::NC011,
    Code::NC012,
];

#[test]
fn every_code_has_exactly_one_mutation_class_or_a_pinned_exemption() {
    // Graph plane: each mutation names a distinct NC code…
    let nc_covered: Vec<Code> = Mutation::all().iter().map(|m| m.expected_code()).collect();
    for (i, code) in nc_covered.iter().enumerate() {
        assert!(
            !nc_covered[..i].contains(code),
            "two NC mutation classes claim {code}"
        );
    }
    // …and together with the pinned exemptions they tile the NC table.
    for code in ALL_CODES.iter().filter(|c| c.as_str().starts_with("NC")) {
        let mutated = nc_covered.contains(code);
        let exempt = UNMUTATED_NC.contains(code);
        assert!(
            mutated != exempt,
            "{code} must have exactly one mutation class or one pinned \
             exemption (mutated={mutated}, exempt={exempt})"
        );
    }

    // Serve plane: a full bijection, no exemptions.
    let sv_covered: Vec<Code> = ServeMutation::all()
        .iter()
        .map(|m| m.expected_code())
        .collect();
    for (i, code) in sv_covered.iter().enumerate() {
        assert!(
            !sv_covered[..i].contains(code),
            "two SV mutation classes claim {code}"
        );
    }
    for code in ALL_CODES.iter().filter(|c| c.as_str().starts_with("SV")) {
        assert!(
            sv_covered.contains(code),
            "{code} has no serve-plane mutation class"
        );
    }
    assert_eq!(sv_covered.len(), 13, "SV table is pinned at 13 codes");
}

#[test]
fn code_names_are_stable_and_unique() {
    for (i, code) in ALL_CODES.iter().enumerate() {
        // Wire names match the variant and appear exactly once.
        assert_eq!(code.as_str(), format!("{code:?}"));
        for other in &ALL_CODES[..i] {
            assert_ne!(code.as_str(), other.as_str());
            assert_ne!(
                code.rule_name(),
                other.rule_name(),
                "{code} and {other} share a rule name"
            );
        }
    }
}

#[test]
fn serve_json_lines_reuse_the_schema() {
    let broken = mutate::apply_serve(&demo_artifact(), ServeMutation::ZeroBudget).unwrap();
    let json = serve_plane::analyze_serve(&broken).to_json_lines();
    assert!(json.contains("\"verify.diagnostic\""));
    assert!(json.contains("\"verify.summary\""));
    assert!(json.contains("SV010"));
    assert!(json.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
}
