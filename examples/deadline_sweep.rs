//! Deadline sweep: what NetCut selects as the application deadline varies
//! — an extension beyond the paper's single 0.9 ms operating point.
//!
//! ```text
//! cargo run --release --example deadline_sweep
//! ```
//!
//! Tight deadlines force deep cuts of the small MobileNets; moderate
//! deadlines are won by trimmed ResNets (the paper's case); loose deadlines
//! let the big networks run uncut.

use netcut::netcut::NetCut;
use netcut_estimate::ProfilerEstimator;
use netcut_graph::zoo;
use netcut_sim::{DeviceModel, Precision, Session};
use netcut_train::SurrogateRetrainer;

fn main() {
    let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
    let sources = zoo::paper_networks();
    let estimator = ProfilerEstimator::profile(&session, &sources, 21);
    let retrainer = SurrogateRetrainer::paper();
    let netcut = NetCut::new(&estimator, &retrainer);
    println!("deadline_ms  selected network                accuracy  measured_ms  retrain_h");
    for deadline in [0.2, 0.3, 0.5, 0.7, 0.9, 1.2, 1.6, 2.2, 3.0, 4.5] {
        let outcome = netcut.run(&sources, deadline, &session);
        match outcome.selected() {
            Some(p) => println!(
                "{deadline:10.1}   {:30}  {:.3}     {:8.3}    {:6.2}",
                p.name, p.accuracy, p.latency_ms, outcome.exploration_hours
            ),
            None => println!("{deadline:10.1}   (no real-time TRN found)"),
        }
    }
}
