//! Battery-budget analysis (extension beyond the paper): the prosthetic
//! hand runs on a battery, so the visual classifier's energy — not just
//! its latency — bounds a day of use. This example prices every NetCut
//! proposal in grasps-per-charge and shows the three-way trade-off
//! (accuracy / latency / energy) the deadline-only view hides.
//!
//! ```text
//! cargo run --release --example energy_budget
//! ```

use netcut::netcut::NetCut;
use netcut_estimate::ProfilerEstimator;
use netcut_graph::{zoo, HeadSpec};
use netcut_hand::LoopBudget;
use netcut_sim::{DeviceModel, EnergyModel, Precision, Session};
use netcut_train::SurrogateRetrainer;

fn main() {
    let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
    let sources = zoo::paper_networks();
    let estimator = ProfilerEstimator::profile(&session, &sources, 42);
    let retrainer = SurrogateRetrainer::paper();
    let energy = EnergyModel::jetson_xavier();
    let budget = LoopBudget::paper();
    // A prosthetic-scale battery: 3.7 V × 2000 mAh ≈ 26.6 kJ, of which the
    // vision subsystem may spend a quarter.
    let vision_budget_j = 26_640.0 * 0.25;

    let outcome =
        NetCut::new(&estimator, &retrainer).run(&sources, budget.visual_budget_ms(), &session);
    println!(
        "per-proposal energy at the {:.1} ms deadline (vision battery share: {:.1} kJ):",
        budget.visual_budget_ms(),
        vision_budget_j / 1e3
    );
    println!(
        "{:28} {:>8} {:>9} {:>13} {:>15}",
        "proposal", "ms", "accuracy", "mJ/inference", "grasps/charge"
    );
    let mut best_grasps = 0.0f64;
    let mut selected_grasps = 0.0f64;
    let selected = outcome.selected().expect("selection exists").name.clone();
    for p in &outcome.proposals {
        let net = sources
            .iter()
            .find(|s| s.name() == p.family)
            .expect("family exists")
            .cut_blocks(p.cutpoint)
            .expect("valid cutpoint")
            .with_head(&HeadSpec::default());
        let mj = energy.network_energy_mj(&net, session.device(), session.precision());
        // One grasp = one reach = `decisions_required` fused inferences.
        let grasp_j = mj * budget.decisions_required as f64 / 1e3;
        let grasps = vision_budget_j / grasp_j;
        println!(
            "{:28} {:>8.3} {:>9.3} {:>13.2} {:>15.0}",
            p.name, p.latency_ms, p.accuracy, mj, grasps
        );
        best_grasps = best_grasps.max(grasps);
        if p.name == selected {
            selected_grasps = grasps;
        }
    }
    println!();
    println!(
        "the accuracy-selected {selected} delivers {selected_grasps:.0} grasps per \
         charge; the most frugal proposal would deliver {best_grasps:.0}. Filling \
         the latency slack buys accuracy at roughly {:.0}x the energy — a second \
         axis a deployed NetCut would expose to the user.",
        best_grasps / selected_grasps
    );
}
