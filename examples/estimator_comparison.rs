//! Latency-estimator shoot-out (§V-B): profiler ratio vs RBF-SVR vs linear
//! regression, plus the grid-search / random-search comparison the paper
//! remarks on.
//!
//! ```text
//! cargo run --release --example estimator_comparison
//! ```

use netcut::removal::blockwise_trns;
use netcut_estimate::{
    grid_search, k_fold_indices, mean_relative_error, random_search, trn_features,
    AnalyticalEstimator, LatencyEstimator, LinearLatencyEstimator, ProfilerEstimator, SourceInfo,
    Standardizer,
};
use netcut_graph::{zoo, HeadSpec, Network};
use netcut_sim::{DeviceModel, Precision, Session};
use std::collections::HashMap;

fn main() {
    let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
    let sources = zoo::paper_networks();
    let head = HeadSpec::default();

    // Measure every blockwise TRN (deployment only — no retraining).
    let mut trns: Vec<Network> = Vec::new();
    let mut truth: Vec<f64> = Vec::new();
    let mut source_latency = HashMap::new();
    for source in &sources {
        let mut adapted = source.backbone().with_head(&head);
        adapted.rename(source.name());
        source_latency.insert(
            source.name().to_owned(),
            session.measure(&adapted, 3).mean_ms,
        );
        for trn in blockwise_trns(source, &head) {
            truth.push(session.measure(&trn, 5).mean_ms);
            trns.push(trn);
        }
    }
    println!(
        "measured {} TRNs across {} families",
        trns.len(),
        sources.len()
    );
    let info = SourceInfo::new(&sources, &source_latency);

    // 20 % train / 80 % test, as in the paper.
    let train: Vec<(&Network, f64)> = trns
        .iter()
        .zip(&truth)
        .enumerate()
        .filter(|(i, _)| i % 5 == 0)
        .map(|(_, (t, &l))| (t, l))
        .collect();
    let test_idx: Vec<usize> = (0..trns.len()).filter(|i| i % 5 != 0).collect();

    let (svr, search) = AnalyticalEstimator::fit_with_grid_search(&train, &info, 10, 7);
    let linear = LinearLatencyEstimator::fit(&train, &info);
    let profiler = ProfilerEstimator::profile(&session, &sources, 7);

    let eval = |est: &dyn LatencyEstimator| -> f64 {
        let pred: Vec<f64> = test_idx
            .iter()
            .map(|&i| est.estimate_ms(&trns[i]))
            .collect();
        let t: Vec<f64> = test_idx.iter().map(|&i| truth[i]).collect();
        mean_relative_error(&pred, &t)
    };
    println!();
    println!("held-out mean relative error:");
    println!("  profiler ratio : {:.2} %", eval(&profiler) * 100.0);
    println!(
        "  RBF SVR        : {:.2} %  (grid-searched C={:.0e}, gamma={})",
        eval(&svr) * 100.0,
        search.params.c,
        search.params.gamma
    );
    println!("  linear         : {:.2} %", eval(&linear) * 100.0);

    // Grid vs random search at an equal evaluation budget (§V-B-2: "grid
    // search outperforms random search as the sample size was not huge").
    let x: Vec<Vec<f64>> = train
        .iter()
        .map(|(t, _)| {
            let src = sources
                .iter()
                .find(|s| s.name() == t.base_name())
                .expect("family exists");
            trn_features(t, &src.backbone_stats(), source_latency[t.base_name()])
        })
        .collect();
    let y: Vec<f64> = train.iter().map(|(_, l)| *l).collect();
    let std = Standardizer::fit(&x);
    let xs = std.transform_all(&x);
    let folds = k_fold_indices(xs.len(), 10, 3).len();
    let grid = grid_search(&xs, &y, folds, 3);
    let random = random_search(&xs, &y, folds, grid.evaluated, 3);
    println!();
    println!(
        "hyper-parameter search at {} evaluations (10-fold CV error):",
        grid.evaluated
    );
    println!("  grid   : {:.4}", grid.cv_error);
    println!("  random : {:.4}", random.cv_error);
}
