//! Family-dependent removal robustness with *real* training: the paper's
//! Fig. 5 observes that MobileNet-style (depthwise-separable) networks
//! lose accuracy from the slightest layer removal while conventional
//! architectures degrade gracefully. This example pretrains a plain CNN
//! and a depthwise-separable CNN of matched depth on the complex synthetic
//! task, then cuts each at every depth and fine-tunes — measuring the
//! robustness contrast with actual gradient descent rather than the
//! surrogate.
//!
//! ```text
//! cargo run --release --example mini_families
//! ```

use netcut_data::Dataset;
use netcut_tensor::layers::{Conv2d, Dense, GlobalAvgPool, MaxPool2, Relu};
use netcut_tensor::{DepthwiseConv2d, Layer, Sequential, Tensor};
use netcut_train::engine;

const BLOCKS: usize = 4;
const WIDTH: usize = 8;

fn plain_features(cut: usize, seed: u64) -> Vec<Box<dyn Layer>> {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut in_ch = netcut_data::IMAGE_CHANNELS;
    for b in 0..BLOCKS - cut {
        layers.push(Box::new(Conv2d::new(in_ch, WIDTH, 3, seed + b as u64)));
        layers.push(Box::new(Relu::new()));
        if b == 0 {
            layers.push(Box::new(MaxPool2::new()));
        }
        in_ch = WIDTH;
    }
    layers
}

fn separable_features(cut: usize, seed: u64) -> Vec<Box<dyn Layer>> {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    // Stem: a full conv to reach WIDTH channels.
    layers.push(Box::new(Conv2d::new(
        netcut_data::IMAGE_CHANNELS,
        WIDTH,
        3,
        seed,
    )));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(MaxPool2::new()));
    for b in 0..BLOCKS - 1 - cut {
        layers.push(Box::new(DepthwiseConv2d::new(
            WIDTH,
            3,
            seed + 10 + b as u64,
        )));
        layers.push(Box::new(Relu::new()));
        layers.push(Box::new(Conv2d::new(WIDTH, WIDTH, 1, seed + 20 + b as u64)));
        layers.push(Box::new(Relu::new()));
    }
    layers
}

fn with_head(mut features: Vec<Box<dyn Layer>>, classes: usize, seed: u64) -> Sequential {
    features.push(Box::new(GlobalAvgPool::new()));
    features.push(Box::new(Dense::new(WIDTH, classes, seed + 1000)));
    let mut model = Sequential::new(features);
    let head = model.params_mut().len() - 2;
    for p in &mut model.params_mut()[head..] {
        p.value = p.value.scaled(0.05);
    }
    model
}

fn family_curve(
    label: &str,
    builder: &dyn Fn(usize, u64) -> Vec<Box<dyn Layer>>,
    max_cut: usize,
    source: &Dataset,
    train: &Dataset,
    test: &Dataset,
    seed: u64,
) -> Vec<f64> {
    // Pretrain the full feature stack on the complex task.
    let mut full = with_head(builder(0, seed), source.classes(), seed);
    engine::train(&mut full, source, 30, 1e-3, 32, seed ^ 0xAA);
    let weights: Vec<Tensor> = engine::snapshot(&mut full);
    let mut curve = Vec::new();
    for cut in 0..=max_cut {
        let mut model = with_head(builder(cut, seed), train.classes(), seed + 77);
        // Restore the retained feature prefix (all params except the fresh
        // head's final dense weight+bias).
        let feature_params = model.params_mut().len() - 2;
        let mut prefix = weights.clone();
        prefix.truncate(feature_params);
        engine::restore_prefix(&mut model, &prefix);
        // Two-phase fine-tune: head only, then everything.
        let feature_layers = model.len() - 2;
        model.freeze_below(feature_layers);
        engine::train(&mut model, train, 25, 1e-3, 32, seed + 1);
        model.unfreeze_all();
        engine::train(&mut model, train, 12, 1e-4, 32, seed + 2);
        let acc = engine::evaluate(&mut model, test);
        curve.push(acc);
        println!("  {label} cut {cut}: angular accuracy {acc:.3}");
    }
    curve
}

fn main() {
    let source = Dataset::objects(500, 61);
    let (train, test) = Dataset::hands(480, 62).split(0.25);
    println!(
        "pretraining both families on {} object images...\n",
        source.len()
    );
    println!("plain CNN (conventional blocks):");
    let plain = family_curve("plain", &plain_features, 2, &source, &train, &test, 5);
    println!();
    println!("separable CNN (MobileNet-style blocks):");
    let separable = family_curve(
        "separable",
        &separable_features,
        2,
        &source,
        &train,
        &test,
        6,
    );
    println!();
    let plain_drop = plain[0] - plain[2];
    let separable_drop = separable[0] - separable[2];
    println!(
        "removing 2 blocks costs the plain CNN {plain_drop:.3} and the separable \
         CNN {separable_drop:.3} angular accuracy."
    );
    println!(
        "paper's Fig. 5 claim at mini scale: separable features are {} transferable \
         under removal.",
        if separable_drop > plain_drop {
            "less"
        } else {
            "not measurably less"
        }
    );
}
