//! Mini-scale layer-removal study on the *real* training engine: the
//! paper's Fig. 5 experiment reproduced with actual gradient descent.
//!
//! ```text
//! cargo run --release --example mini_transfer
//! ```
//!
//! A miniature CNN is pretrained on the complex 10-way object task, then
//! cut at every depth; each TRN gets a fresh head and the two-phase
//! fine-tune (features frozen at 1e-3, then everything at 1e-4) on the
//! simpler 5-way grasp task. The resulting table shows the trade-off the
//! paper exploits: early cuts are almost free (the removed features were
//! problem-specific) while deep cuts destroy the representation.

use netcut_data::Dataset;
use netcut_train::engine::{self, FineTuneConfig, MiniConfig};

fn main() {
    let cfg = MiniConfig {
        conv_blocks: 4,
        width: 8,
        seed: 11,
    };
    let source = Dataset::objects(600, 31);
    let (train, test) = Dataset::hands(500, 32).split(0.25);
    println!(
        "pretraining a {}-block CNN on {} object images...",
        cfg.conv_blocks,
        source.len()
    );
    let mut pretrained = engine::pretrain(&cfg, &source, 30);
    let weights = engine::snapshot(&mut pretrained);
    let ft = FineTuneConfig {
        head_epochs: 30,
        finetune_epochs: 15,
        ..FineTuneConfig::default()
    };
    println!();
    println!("cut  kept conv blocks  params  angular accuracy");
    let mut results = Vec::new();
    for cut in 0..cfg.conv_blocks {
        let mut trn = engine::build_trimmed(&cfg, &weights, cut, 5);
        let params: usize = trn.params_mut().iter().map(|p| p.value.len()).sum();
        let acc = engine::fine_tune(&mut trn, &cfg, cut, &train, &test, &ft);
        println!(
            "{cut:3}  {:16}  {params:6}  {acc:.3}",
            cfg.conv_blocks - cut
        );
        results.push(acc);
    }
    // A randomly initialized baseline under the same schedule, for scale.
    let mut scratch = engine::build(&MiniConfig { seed: 999, ..cfg }, 5);
    let scratch_acc = engine::fine_tune(&mut scratch, &cfg, 0, &train, &test, &ft);
    println!();
    println!("random-features baseline (same schedule): {scratch_acc:.3}");
    let best = results.iter().copied().fold(f64::MIN, f64::max);
    println!(
        "best TRN: {best:.3} — shallow cuts retain accuracy; the deepest cut drops {:.3}",
        results[0] - results[results.len() - 1]
    );
}
