//! The robotic prosthetic hand scenario of §III, end to end: the
//! control-loop timing budget that *produces* the 0.9 ms deadline, a real
//! EMG classifier on synthetic Myo-band windows, a real mini visual
//! classifier, and per-reach sensor fusion.
//!
//! ```text
//! cargo run --release --example prosthetic_hand
//! ```

use netcut_data::{angular_similarity, Dataset, GraspType};
use netcut_graph::{zoo, HeadSpec};
use netcut_hand::emg::generate_windows;
use netcut_hand::fusion::{fuse, FusionRule};
use netcut_hand::{EmgClassifier, EmgTrainConfig, LoopBudget};
use netcut_sim::{DeviceModel, Precision, Session};
use netcut_train::engine::{self, FineTuneConfig, MiniConfig};
use netcut_train::{Retrainer, SurrogateRetrainer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- 1. The timing budget (§III-A): where 0.9 ms comes from.
    let budget = LoopBudget::paper();
    println!("control-loop timing budget:");
    println!(
        "  reach {} ms − actuation {} ms = {} ms decision window",
        budget.reach_window_ms,
        budget.actuation_ms,
        budget.decision_window_ms()
    );
    println!(
        "  {} fused decisions -> {} ms frame period; fixed costs {:.1} ms",
        budget.decisions_required,
        budget.frame_period_ms(),
        budget.fixed_per_frame_ms()
    );
    println!("  visual budget = {:.2} ms", budget.visual_budget_ms());

    // --- 2. Deployment check on the simulated Xavier: both the
    // off-the-shelf choice and the NetCut selection sustain the loop.
    let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
    let retrainer = SurrogateRetrainer::paper();
    let head = HeadSpec::default();
    let shelf = zoo::mobilenet_v1(0.5).backbone().with_head(&head);
    let trimmed = zoo::resnet50()
        .cut_blocks(9)
        .expect("resnet50 has 16 blocks")
        .with_head(&head);
    println!();
    println!("visual classifier candidates:");
    for net in [&shelf, &trimmed] {
        let latency = session.measure(net, 7).mean_ms;
        let accuracy = retrainer.retrain(net).accuracy;
        let decisions = budget.decisions_achieved(latency);
        println!(
            "  {:22} {:6.3} ms  sustains loop: {}  decisions/reach: {}  accuracy {:.3}",
            net.name(),
            latency,
            budget.sustains(latency),
            decisions,
            accuracy
        );
        assert!(budget.sustains(latency), "candidate misses the budget");
    }

    // --- 3. Real classifiers: EMG MLP + mini visual CNN.
    println!();
    println!("training the EMG classifier (real gradient descent)...");
    let emg_clf = EmgClassifier::train(&EmgTrainConfig::default());
    let emg_eval = emg_clf.evaluate(&generate_windows(200, 901));
    println!("  EMG angular accuracy: {emg_eval:.3}");

    let cfg = MiniConfig {
        conv_blocks: 3,
        width: 8,
        seed: 5,
    };
    let source_task = Dataset::objects(500, 100);
    let (train, reaches) = Dataset::hands(460, 101).split(0.4);
    let mut pretrained = engine::pretrain(&cfg, &source_task, 25);
    let weights = engine::snapshot(&mut pretrained);
    let mut visual = engine::build_trimmed(&cfg, &weights, 1, 5);
    let ft = FineTuneConfig {
        head_epochs: 25,
        finetune_epochs: 10,
        ..FineTuneConfig::default()
    };
    let visual_acc = engine::fine_tune(&mut visual, &cfg, 1, &train, &reaches, &ft);
    println!("  visual angular accuracy: {visual_acc:.3}");

    // --- 4. Control-loop simulation: one object per reach, several noisy
    // frames, EMG+vision fused per frame and averaged over the reach.
    let mut rng = SmallRng::seed_from_u64(9);
    let frames_per_reach = 5;
    let n_reaches = 60.min(reaches.len());
    let mut single_frame = 0.0;
    let mut per_rule = [0.0f64; 3];
    let rules = [
        FusionRule::Average,
        FusionRule::Product,
        FusionRule::ConfidenceWeighted,
    ];
    let emg_test = generate_windows(n_reaches * frames_per_reach, 555);
    for reach in 0..n_reaches {
        let truth = reaches.sample(reach).label.clone();
        let (clean, _) = reaches.batch(&[reach]);
        let mut frame_estimates = Vec::new();
        for f in 0..frames_per_reach {
            let mut frame = clean.clone();
            for px in frame.data_mut() {
                *px = (*px + rng.gen_range(-0.08..0.08f32)).clamp(0.0, 1.0);
            }
            let logits = visual.forward(&frame, false);
            let vision = netcut_tensor::SoftCrossEntropy::softmax(&logits)
                .data()
                .to_vec();
            // EMG window for this frame: a real window re-labelled toward
            // the reach's grasp by mixing prediction with the truth prior.
            let emg_raw = emg_clf.predict(&emg_test[reach * frames_per_reach + f]);
            let emg: Vec<f32> = emg_raw
                .iter()
                .zip(&truth)
                .map(|(&p, &t)| 0.5 * p + 0.5 * t)
                .collect();
            frame_estimates.push(fuse(&[vision, emg], FusionRule::Average));
        }
        single_frame += angular_similarity(&frame_estimates[0], &truth);
        for (acc, rule) in per_rule.iter_mut().zip(rules) {
            let decision = fuse(&frame_estimates, rule);
            *acc += angular_similarity(&decision, &truth);
        }
    }
    let n = n_reaches as f64;
    println!();
    println!("grasp-decision quality over {n_reaches} simulated reaches:");
    println!("  single frame            {:.3}", single_frame / n);
    for (acc, rule) in per_rule.iter().zip(rules) {
        println!("  fused/reach {:18} {:.3}", format!("({rule:?})"), acc / n);
    }
    assert!(
        per_rule[0] / n >= single_frame / n,
        "multi-frame fusion should beat a single-frame decision"
    );
    println!();
    println!(
        "grasp classes: {}",
        GraspType::ALL.map(|g| g.to_string()).join(", ")
    );
}
