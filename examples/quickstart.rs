//! Quickstart: run NetCut end to end on the paper's seven networks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the architecture zoo, profiles each network once on the simulated
//! Jetson Xavier, and runs Algorithm 1 at the robotic hand's 0.9 ms
//! deadline, printing the proposed TRN per family and the final selection.

use netcut::netcut::NetCut;
use netcut_estimate::ProfilerEstimator;
use netcut_graph::zoo;
use netcut_sim::{DeviceModel, Precision, Session};
use netcut_train::SurrogateRetrainer;

fn main() {
    let deadline_ms = 0.9;
    let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
    let sources = zoo::paper_networks();
    println!("source networks:");
    for net in &sources {
        let m = session.measure(net, 42);
        println!(
            "  {:22} {:3} blocks  {:6.2} MFLOPs  {:6.3} ms",
            net.name(),
            net.num_blocks(),
            net.stats().total_flops as f64 / 1e6,
            m.mean_ms
        );
    }

    // One profiling pass per family is all the estimator needs.
    let estimator = ProfilerEstimator::profile(&session, &sources, 42);
    let retrainer = SurrogateRetrainer::paper();
    let outcome = NetCut::new(&estimator, &retrainer).run(&sources, deadline_ms, &session);

    println!();
    println!("NetCut proposals at {deadline_ms} ms:");
    for p in &outcome.proposals {
        println!(
            "  {:28} est {:.3} ms | measured {:.3} ms | accuracy {:.3}",
            p.name,
            p.estimated_ms.unwrap_or(f64::NAN),
            p.latency_ms,
            p.accuracy
        );
    }
    match outcome.selected() {
        Some(best) => println!(
            "\nselected: {} (accuracy {:.3}, {:.2} h of retraining across all proposals)",
            best.name, best.accuracy, outcome.exploration_hours
        ),
        None => println!("\nno family could be trimmed under the deadline"),
    }
}
