//! Offline stand-in for `criterion`: compiles benches, runs each closure a
//! handful of times without statistics.

pub struct Criterion;

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..3 {
            std::hint::black_box(f());
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(&mut self, name: N, mut f: F) -> &mut Self {
        eprintln!("bench {name}");
        f(&mut Bencher);
        self
    }
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn finish(&mut self) {}
}

impl Criterion {
    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self }
    }
    pub fn bench_function<N: std::fmt::Display, F: FnMut(&mut Bencher)>(&mut self, name: N, mut f: F) -> &mut Self {
        eprintln!("bench {name}");
        f(&mut Bencher);
        self
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion;
            $($target(&mut c);)+
        }
    };
    ($name:ident $($rest:tt)*) => {
        fn $name() {}
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
