//! Offline stand-in for `proptest`.
//!
//! The real proptest crate is unreachable in this build environment, so this
//! crate implements a small deterministic property-testing engine covering the
//! subset of the proptest API the workspace uses:
//!
//! * range strategies (`0usize..6`, `-2.0f64..2.0`, `1..=4u8`, ...),
//! * tuple strategies up to arity 6,
//! * `prop::collection::vec(strategy, size)`,
//! * `.prop_map(..)`, `.prop_flat_map(..)`, `.boxed()`,
//! * `prop_oneof![..]`, `any::<bool>()` and friends,
//! * the `proptest!` macro with optional `#![proptest_config(..)]`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from real proptest: no shrinking (a failing case panics with
//! the generated inputs unshrunk), no persistence files, and the case count
//! defaults to 64. Generation is fully deterministic: the RNG is seeded from
//! a hash of the test's name, so failures reproduce exactly.

#![allow(clippy::missing_panics_doc, clippy::must_use_candidate)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Configuration for a `proptest!` block. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl Config {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                max_shrink_iters: 0,
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Deterministic xorshift64* RNG used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        #[must_use]
        pub fn seeded(seed: u64) -> Self {
            // SplitMix64 scramble so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            TestRng {
                state: (z ^ (z >> 31)) | 1,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            #[allow(clippy::cast_precision_loss)]
            let v = (self.next_u64() >> 11) as f64;
            v / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)` for `bound >= 1`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound >= 1);
            // Multiply-shift reduction; bias is negligible for test sizes.
            let hi = u128::from(self.next_u64()).wrapping_mul(u128::from(bound)) >> 64;
            #[allow(clippy::cast_possible_truncation)]
            {
                hi as u64
            }
        }
    }

    /// FNV-1a hash used to derive per-test seeds from test names.
    #[must_use]
    pub fn seed_from_name(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

pub use test_runner::{Config as ProptestConfig, TestRng};

// ---------------------------------------------------------------------------
// Strategy trait
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy simply
/// produces a value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased strategy, produced by [`Strategy::boxed`] and `prop_oneof!`.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 consecutive candidates");
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;

    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let offset = rng.below(span);
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u64;
                let offset = rng.below(span);
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

#[allow(
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::cast_possible_wrap,
    clippy::cast_lossless
)]
mod int_ranges {
    use super::{Range, RangeInclusive, Strategy, TestRng};
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                #[allow(clippy::cast_possible_truncation)]
                let unit = rng.next_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                #[allow(clippy::cast_possible_truncation)]
                let unit = rng.next_f64() as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub struct AnyStrategy<T>(PhantomData<T>);

#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyStrategy(PhantomData)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                #[allow(clippy::cast_possible_truncation)]
                {
                    rng.next_u64() as $t
                }
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyStrategy(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: a fixed size or a (half-open or
    /// inclusive) range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            #[allow(clippy::cast_possible_truncation)]
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::` namespace mirror (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Choose uniformly between several strategies yielding the same value type.
/// Weights (`3 => strat`) are accepted and treated as uniform.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Uniform choice over boxed strategies — backing for `prop_oneof!`.
pub struct Union<V>(Vec<BoxedStrategy<V>>);

#[must_use]
pub fn union<V>(options: Vec<BoxedStrategy<V>>) -> Union<V> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one option");
    Union(options)
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        #[allow(clippy::cast_possible_truncation)]
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

/// Run property tests. Supports the same surface syntax as real proptest for
/// blocks of `#[test]` functions with `pattern in strategy` arguments and an
/// optional leading `#![proptest_config(..)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::seeded(
                $crate::test_runner::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                let mut run = || {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    #[allow(unreachable_code)]
                    {
                        Ok::<(), String>(())
                    }
                };
                if let Err(msg) = run() {
                    panic!("proptest case {case} failed: {msg}");
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a `proptest!` body. Returns an `Err` (mapped to a panic with
/// the case number) instead of panicking directly, mirroring real proptest's
/// `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: `{:?}` != `{:?}`", format!($($fmt)+), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: both sides are `{:?}`", l);
    }};
}

/// Skip a case when its inputs are unsuitable. The stand-in simply treats the
/// case as passing (no retry accounting).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}
