//! Offline stand-in for `rand` 0.8 — functional xorshift-based RNG with the
//! API subset this workspace uses. Values differ from real `rand`.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    #[derive(Debug, Clone)]
    pub struct SmallRng(u64);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 to spread the seed.
            let mut z = state.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            SmallRng((z ^ (z >> 31)) | 1)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

pub trait StandardSample {
    fn from_u64(v: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_u64(v: u64) -> Self {
        (v >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl StandardSample for f32 {
    fn from_u64(v: u64) -> Self {
        (v >> 40) as f32 / (1u64 << 24) as f32
    }
}
impl StandardSample for u64 {
    fn from_u64(v: u64) -> Self {
        v
    }
}
impl StandardSample for u32 {
    fn from_u64(v: u64) -> Self {
        (v >> 32) as u32
    }
}
impl StandardSample for bool {
    fn from_u64(v: u64) -> Self {
        v & 1 == 1
    }
}

/// A type with uniform sampling over a `lo..hi(+1)` interval. The single
/// blanket `SampleRange` impl per range shape (mirroring real `rand`) is
/// what lets type inference flow from the range literal to the result.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_in<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                if inclusive {
                    assert!(lo <= hi, "empty range");
                } else {
                    assert!(lo < hi, "empty range");
                }
                let u = <$t as StandardSample>::from_u64(rng.next_u64());
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_uniform!(f32, f64);

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "empty range");
                let v = (rng.next_u64() as u128) % (span as u128);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

pub trait Rng: RngCore + Sized {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}
