/tmp/stubs/rand/target/debug/librand.rlib: /tmp/stubs/rand/src/lib.rs
