//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace patches `serde` to this crate (see `[patch.crates-io]` in the
//! root `Cargo.toml` and `offline/README.md`). It implements the subset of
//! serde actually used by the workspace with a simplified data model:
//!
//! * [`Serialize`] lowers a value to a [`Content`] tree.
//! * [`Deserialize`] rebuilds a value from a [`Content`] tree.
//! * `#[derive(Serialize, Deserialize)]` is provided by the sibling
//!   `serde_derive` stand-in, which generates impls of these traits for
//!   plain structs, newtype structs, and externally tagged enums — the same
//!   JSON representation real serde produces for the types in this repo
//!   (none of which use `#[serde(...)]` attributes or generics).
//!
//! The API surface is intentionally minimal; anything the workspace does not
//! use is omitted. Values round-trip through `serde_json` (also patched)
//! byte-compatibly with real serde for the types in this repository.

#![allow(clippy::missing_errors_doc)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Self-describing intermediate representation produced by [`Serialize`] and
/// consumed by [`Deserialize`]. Integers keep their signedness so formats can
/// render `3` and `3.0` differently, matching real serde_json.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered map (struct fields keep declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    #[must_use]
    pub fn as_map_slice(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    #[must_use]
    pub fn map_get(&self, key: &str) -> Option<&Content> {
        self.as_map_slice()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error. Carries a human-readable message only.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialize a value into the [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserialize a value from a [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Hook used by derived struct impls when a field is absent from the
    /// input map. `Option<T>` overrides this to yield `None`; everything else
    /// reports a missing-field error, matching real serde's derive.
    #[doc(hidden)]
    fn missing_field(field: &str) -> Result<Self, DeError> {
        Err(DeError::custom(format!("missing field `{field}`")))
    }
}

/// Helper used by derived code: look up `key` in a struct map and
/// deserialize it, falling back to [`Deserialize::missing_field`].
#[doc(hidden)]
pub fn de_field<T: Deserialize>(map: &[(String, Content)], key: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_content(v)
            .map_err(|e| DeError::custom(format!("field `{key}`: {e}"))),
        None => T::missing_field(key),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => {
                        #[allow(clippy::cast_sign_loss)]
                        { *v as u64 }
                    }
                    other => {
                        return Err(DeError::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        raw
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn to_content(&self) -> Content {
        Content::U64(*self)
    }
}

impl Deserialize for u64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::U64(v) => Ok(*v),
            Content::I64(v) if *v >= 0 => {
                #[allow(clippy::cast_sign_loss)]
                Ok(*v as u64)
            }
            other => Err(DeError::custom(format!("expected u64, got {other:?}"))),
        }
    }
}

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let raw = u64::from_content(content)
            .map_err(|_| DeError::custom(format!("expected usize, got {content:?}")))?;
        usize::try_from(raw)
            .map_err(|_| DeError::custom(format!("value {raw} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v >= 0 {
                    #[allow(clippy::cast_sign_loss)]
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let raw: i64 = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v).map_err(|_| {
                        DeError::custom(format!("value {} out of range for i64", v))
                    })?,
                    other => {
                        return Err(DeError::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    DeError::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)),
                        raw
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn to_content(&self) -> Content {
        if *self >= 0 {
            #[allow(clippy::cast_sign_loss)]
            Content::U64(*self as u64)
        } else {
            Content::I64(*self)
        }
    }
}

impl Deserialize for i64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::I64(v) => Ok(*v),
            Content::U64(v) => i64::try_from(*v)
                .map_err(|_| DeError::custom(format!("value {v} out of range for i64"))),
            other => Err(DeError::custom(format!("expected i64, got {other:?}"))),
        }
    }
}

impl Serialize for isize {
    fn to_content(&self) -> Content {
        (*self as i64).to_content()
    }
}

impl Deserialize for isize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let raw = i64::from_content(content)?;
        isize::try_from(raw)
            .map_err(|_| DeError::custom(format!("value {raw} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            #[allow(clippy::cast_precision_loss)]
            Content::U64(v) => Ok(*v as f64),
            #[allow(clippy::cast_precision_loss)]
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::custom(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        #[allow(clippy::cast_possible_truncation)]
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let items = match content {
                    Content::Seq(items) => items,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected tuple sequence, got {other:?}"
                        )))
                    }
                };
                let expected = [$($idx,)+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected}, got {} elements",
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| V::from_content(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output, like serde_json's default BTreeMap-backed maps.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| V::from_content(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(DeError::custom(format!("expected map, got {other:?}"))),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::custom(format!("expected null, got {other:?}"))),
        }
    }
}
