//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` directly on
//! top of `proc_macro` (no `syn`/`quote`, which are unreachable offline). It
//! supports exactly the shapes this workspace uses:
//!
//! * structs with named fields,
//! * tuple structs (arity 1 serialized as the inner value — newtype — and
//!   arity ≥ 2 as a sequence),
//! * enums with unit, newtype, tuple, and struct variants, using serde's
//!   externally tagged representation (`"Variant"`,
//!   `{"Variant": inner}`, `{"Variant": [..]}`, `{"Variant": {..}}`).
//!
//! `#[serde(...)]` attributes and generic parameters are intentionally NOT
//! supported — the workspace does not use them — and the parser fails loudly
//! (compile error via panic) if it meets a shape it does not understand, so
//! a silent divergence from real serde cannot slip in.
//!
//! The generated code lowers values to `serde::Content` and rebuilds them
//! from it; see the sibling `serde` stand-in for the data model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (including doc comments) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                panic!("serde_derive stub: unexpected token `{kw}` before item keyword");
            }
            other => panic!("serde_derive stub: unexpected input near {other:?}"),
        }
    }

    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }

    if is_struct {
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            other => panic!("serde_derive stub: unexpected struct body {other:?}"),
        };
        Item {
            name,
            kind: ItemKind::Struct(fields),
        }
    } else {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde_derive stub: unexpected enum body {other:?}"),
        };
        Item {
            name,
            kind: ItemKind::Enum(parse_variants(body)),
        }
    }
}

/// Parse `field: Type, ...` returning field names. Types are skipped by
/// scanning to the next top-level comma (tracking `<...>` nesting).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes / doc comments on the field.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma or end of stream
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected `:` after field, got {other:?}"),
        }
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // consume the comma (or run past the end)
    }
    fields
}

/// Count top-level comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut s = String::from(
                "let mut fields: Vec<(String, serde::Content)> = Vec::new();\n",
            );
            for f in fields {
                s.push_str(&format!(
                    "fields.push((String::from(\"{f}\"), serde::Serialize::to_content(&self.{f})));\n"
                ));
            }
            s.push_str("serde::Content::Map(fields)");
            s
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            "serde::Serialize::to_content(&self.0)".to_string()
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("serde::Serialize::to_content(&self.{idx})"))
                .collect();
            format!("serde::Content::Seq(vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "serde::Content::Null".to_string(),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serde::Content::Str(String::from(\"{vname}\")),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => serde::Content::Map(vec![(String::from(\"{vname}\"), serde::Serialize::to_content(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => serde::Content::Map(vec![(String::from(\"{vname}\"), serde::Content::Seq(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", "),
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "inner.push((String::from(\"{f}\"), serde::Serialize::to_content({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n\
                             let mut inner: Vec<(String, serde::Content)> = Vec::new();\n\
                             {pushes}\
                             serde::Content::Map(vec![(String::from(\"{vname}\"), serde::Content::Map(inner))])\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_content(&self) -> serde::Content {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!("{f}: serde::de_field(m, \"{f}\")?,\n"));
            }
            format!(
                "let m = match content {{\n\
                 serde::Content::Map(m) => m,\n\
                 other => return Err(serde::DeError::custom(format!(\"expected map for struct {name}, got {{other:?}}\"))),\n\
                 }};\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::from_content(content)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("serde::Deserialize::from_content(&items[{idx}])?"))
                .collect();
            format!(
                "let items = match content {{\n\
                 serde::Content::Seq(items) if items.len() == {n} => items,\n\
                 other => return Err(serde::DeError::custom(format!(\"expected sequence of {n} for struct {name}, got {{other:?}}\"))),\n\
                 }};\n\
                 Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => format!("let _ = content;\nOk({name})"),
        ItemKind::Enum(variants) => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .collect();
            let tagged: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();

            let str_arm = if unit.is_empty() {
                format!(
                    "serde::Content::Str(other) => Err(serde::DeError::custom(format!(\"unexpected string `{{other}}` for enum {name}\"))),\n"
                )
            } else {
                let mut arms = String::new();
                for v in &unit {
                    arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n", v = v.name));
                }
                format!(
                    "serde::Content::Str(s) => match s.as_str() {{\n\
                     {arms}\
                     other => Err(serde::DeError::custom(format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                     }},\n"
                )
            };

            let map_arm = if tagged.is_empty() {
                String::new()
            } else {
                let mut arms = String::new();
                for v in &tagged {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}(serde::Deserialize::from_content(value)?)),\n"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|idx| {
                                    format!("serde::Deserialize::from_content(&items[{idx}])?")
                                })
                                .collect();
                            arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let items = match value {{\n\
                                 serde::Content::Seq(items) if items.len() == {n} => items,\n\
                                 other => return Err(serde::DeError::custom(format!(\"expected sequence of {n} for variant {vname}, got {{other:?}}\"))),\n\
                                 }};\n\
                                 Ok({name}::{vname}({items}))\n\
                                 }}\n",
                                items = items.join(", ")
                            ));
                        }
                        Fields::Named(fields) => {
                            let mut inits = String::new();
                            for f in fields {
                                inits.push_str(&format!(
                                    "{f}: serde::de_field(vm, \"{f}\")?,\n"
                                ));
                            }
                            arms.push_str(&format!(
                                "\"{vname}\" => {{\n\
                                 let vm = match value {{\n\
                                 serde::Content::Map(vm) => vm,\n\
                                 other => return Err(serde::DeError::custom(format!(\"expected map for variant {vname}, got {{other:?}}\"))),\n\
                                 }};\n\
                                 Ok({name}::{vname} {{\n{inits}}})\n\
                                 }}\n"
                            ));
                        }
                        Fields::Unit => unreachable!(),
                    }
                }
                format!(
                    "serde::Content::Map(m) if m.len() == 1 => {{\n\
                     let (tag, value) = &m[0];\n\
                     match tag.as_str() {{\n\
                     {arms}\
                     other => Err(serde::DeError::custom(format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                     }}\n\
                     }},\n"
                )
            };

            format!(
                "match content {{\n\
                 {str_arm}\
                 {map_arm}\
                 other => Err(serde::DeError::custom(format!(\"invalid content for enum {name}: {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {{\n{body}\n}}\n\
         }}\n"
    )
}
