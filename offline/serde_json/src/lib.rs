//! Offline stand-in for `serde_json`.
//!
//! Backed by the `serde` stand-in's `Content` tree (see `offline/serde`).
//! For the types in this workspace — which use no `#[serde(...)]` attributes —
//! output is byte-compatible with real serde_json: struct fields render in
//! declaration order, integers render without a decimal point, floats render
//! with Rust's shortest round-trip representation plus a trailing `.0` for
//! integral values, and `Value` objects render with sorted keys (real
//! serde_json's default `BTreeMap` backing).
//!
//! Supported surface: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`], [`Value`] (with the accessor methods the workspace uses),
//! and the [`json!`] macro for object/array/expression literals.

#![allow(clippy::missing_errors_doc, clippy::must_use_candidate)]

use serde::{Content, Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

#[doc(hidden)]
pub mod __private {
    pub use std::collections::BTreeMap;
    pub use std::string::String;
    pub use std::vec::Vec;
}

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// Arbitrary JSON value. Objects are key-sorted (`BTreeMap`), matching real
/// serde_json's default representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// JSON number preserving integer-ness, like real serde_json.
#[derive(Debug, Clone, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, PartialEq)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(v) => Some(v),
            N::I(v) => u64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            N::F(v) => Some(v),
            N::U(v) => Some(v as f64),
            N::I(v) => Some(v as f64),
        }
    }

    pub fn is_u64(&self) -> bool {
        matches!(self.0, N::U(_))
    }

    pub fn is_i64(&self) -> bool {
        matches!(self.0, N::I(_))
    }

    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Self {
        Number(N::U(v))
    }
}

impl From<i64> for Number {
    fn from(v: i64) -> Self {
        if v >= 0 {
            #[allow(clippy::cast_sign_loss)]
            Number(N::U(v as u64))
        } else {
            Number(N::I(v))
        }
    }
}

impl From<f64> for Number {
    fn from(v: f64) -> Self {
        Number(N::F(v))
    }
}

static NULL: Value = Value::Null;

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl FromStr for Value {
    type Err = Error;

    fn from_str(s: &str) -> Result<Value> {
        from_str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let content = value_to_content(self);
        let rendered = if f.alternate() {
            render_pretty(&content)
        } else {
            render_compact(&content)
        };
        f.write_str(&rendered)
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> std::result::Result<Self, serde::DeError> {
        Ok(content_to_value(content))
    }
}

fn value_to_content(value: &Value) -> Content {
    match value {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(n) => match n.0 {
            N::U(v) => Content::U64(v),
            N::I(v) => Content::I64(v),
            N::F(v) => Content::F64(v),
        },
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

fn content_to_value(content: &Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::U64(v) => Value::Number(Number(N::U(*v))),
        Content::I64(v) => Value::Number(Number(N::I(*v))),
        Content::F64(v) => Value::Number(Number(N::F(*v))),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Value {
    content_to_value(&value.to_content())
}

// ---------------------------------------------------------------------------
// Serialization (rendering)
// ---------------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(render_compact(&value.to_content()))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(render_pretty(&value.to_content()))
}

fn render_compact(content: &Content) -> String {
    let mut out = String::new();
    write_compact(&mut out, content);
    out
}

fn write_compact(out: &mut String, content: &Content) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn render_pretty(content: &Content) -> String {
    let mut out = String::new();
    write_pretty(&mut out, content, 0);
    out
}

fn write_pretty(out: &mut String, content: &Content, indent: usize) {
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// Float rendering compatible with real serde_json's `float_roundtrip`:
/// Rust's shortest round-trip `Display`, with `.0` appended for integral
/// values so floats never render as bare integers.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization (parsing)
// ---------------------------------------------------------------------------

pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let content = parse_content(input)?;
    T::from_content(&content).map_err(|e| Error::new(e.to_string()))
}

fn parse_content(input: &str) -> Result<Content> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid keyword at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            continue; // parse_hex4 already advanced past the digits
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (may be multi-byte).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text =
            std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let value =
            u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, got {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, got {:?} at offset {}",
                        other.map(|b| b as char),
                        self.pos
                    )))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from a JSON-like literal. Supports `null`, booleans,
/// object literals with string-literal keys, array literals, and arbitrary
/// serializable expressions — the subset the workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        let mut array: $crate::__private::Vec<$crate::Value> = $crate::__private::Vec::new();
        $crate::json_array_entries!(array () $($tt)*);
        $crate::Value::Array(array)
    }};
    ({ $($tt:tt)* }) => {{
        let mut object: $crate::__private::BTreeMap<$crate::__private::String, $crate::Value> =
            $crate::__private::BTreeMap::new();
        $crate::json_object_entries!(object () () $($tt)*);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    // Done (possibly after a trailing comma).
    ($obj:ident () ()) => {};
    // Start of an entry: capture the key, then accumulate value tokens.
    ($obj:ident () () $key:literal : $($rest:tt)*) => {
        $crate::json_object_entries!($obj ($key) () $($rest)*);
    };
    // Top-level comma ends the value.
    ($obj:ident ($key:literal) ($($val:tt)+) , $($rest:tt)*) => {
        $obj.insert($crate::__private::String::from($key), $crate::json!($($val)+));
        $crate::json_object_entries!($obj () () $($rest)*);
    };
    // End of input ends the value.
    ($obj:ident ($key:literal) ($($val:tt)+)) => {
        $obj.insert($crate::__private::String::from($key), $crate::json!($($val)+));
    };
    // Accumulate one more token into the value.
    ($obj:ident ($key:literal) ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_object_entries!($obj ($key) ($($val)* $next) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_array_entries {
    ($arr:ident ()) => {};
    ($arr:ident ($($val:tt)+) , $($rest:tt)*) => {
        $arr.push($crate::json!($($val)+));
        $crate::json_array_entries!($arr () $($rest)*);
    };
    ($arr:ident ($($val:tt)+)) => {
        $arr.push($crate::json!($($val)+));
    };
    ($arr:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_array_entries!($arr ($($val)* $next) $($rest)*);
    };
}
