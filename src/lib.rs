//! Umbrella crate for the NetCut (DATE 2021) reproduction.
//!
//! Re-exports every workspace crate under one roof so the runnable examples
//! in `examples/` and the cross-crate integration tests in `tests/` have a
//! single dependency. Library users should depend on the individual crates
//! (`netcut`, `netcut-graph`, …) directly.
//!
//! # Example
//!
//! ```
//! use netcut_repro::graph::zoo;
//!
//! let nets = zoo::paper_networks();
//! assert_eq!(nets.len(), 7);
//! ```

#![forbid(unsafe_code)]

pub use netcut as core;
pub use netcut_data as data;
pub use netcut_estimate as estimate;
pub use netcut_graph as graph;
pub use netcut_hand as hand;
pub use netcut_obs as obs;
pub use netcut_quant as quant;
pub use netcut_serve as serve;
pub use netcut_sim as sim;
pub use netcut_tensor as tensor;
pub use netcut_train as train;
pub use netcut_verify as verify;
