//! Determinism and serialization contracts: every result in the
//! reproduction must be bit-identical across runs given the same seeds,
//! and every reportable artifact must round-trip through JSON.

use netcut::explore::off_the_shelf;
use netcut::netcut::NetCut;
use netcut_estimate::ProfilerEstimator;
use netcut_graph::{zoo, HeadSpec, Network};
use netcut_sim::{DeviceModel, Precision, Session};
use netcut_train::SurrogateRetrainer;

fn session() -> Session {
    Session::new(DeviceModel::jetson_xavier(), Precision::Int8)
}

#[test]
fn measurements_are_bit_identical_across_runs() {
    let net = zoo::densenet121();
    let a = session().measure(&net, 7);
    let b = session().measure(&net, 7);
    assert_eq!(a, b);
    let ta = session().profile(&net, 7);
    let tb = session().profile(&net, 7);
    assert_eq!(ta.end_to_end_ms(), tb.end_to_end_ms());
    assert_eq!(ta.total_layer_time_ms(), tb.total_layer_time_ms());
}

#[test]
fn netcut_outcome_is_deterministic() {
    let sources = zoo::paper_networks();
    let retrainer = SurrogateRetrainer::paper();
    let run = || {
        let s = session();
        let estimator = ProfilerEstimator::profile(&s, &sources, 3);
        NetCut::new(&estimator, &retrainer).run(&sources, 0.9, &s)
    };
    let a = run();
    let b = run();
    assert_eq!(a.proposals.len(), b.proposals.len());
    for (pa, pb) in a.proposals.iter().zip(&b.proposals) {
        assert_eq!(pa, pb);
    }
}

#[test]
fn network_serializes_and_round_trips() {
    let net = zoo::mobilenet_v2(1.0);
    let json = serde_json::to_string(&net).expect("network serializes");
    let back: Network = serde_json::from_str(&json).expect("network deserializes");
    assert_eq!(back, net);
    netcut_verify::validate(&back).expect("deserialized network is valid");
    assert_eq!(back.stats(), net.stats());
}

#[test]
fn trimmed_network_round_trips() {
    let trn = zoo::inception_v3()
        .cut_blocks(5)
        .expect("valid cut")
        .with_head(&HeadSpec::default());
    let json = serde_json::to_string(&trn).expect("TRN serializes");
    let back: Network = serde_json::from_str(&json).expect("TRN deserializes");
    assert_eq!(back.cutpoint(), 5);
    assert_eq!(back.base_name(), "inception_v3");
    assert_eq!(
        session().measure(&back, 9).mean_ms,
        session().measure(&trn, 9).mean_ms
    );
}

#[test]
fn exploration_points_round_trip_as_json() {
    let shelf = off_the_shelf(
        &[zoo::mobilenet_v1(0.25)],
        &HeadSpec::default(),
        &session(),
        &SurrogateRetrainer::paper(),
        1,
    );
    let json = serde_json::to_string(&shelf.points).expect("points serialize");
    let back: Vec<netcut::CandidatePoint> =
        serde_json::from_str(&json).expect("points deserialize");
    assert_eq!(back, shelf.points);
}

#[test]
fn trace_is_deterministic_and_serializable() {
    let net = zoo::squeezenet();
    let a = session().trace(&net);
    let b = session().trace(&net);
    assert_eq!(a.total_ms, b.total_ms);
    let json = serde_json::to_string(&a).expect("trace serializes");
    let back: netcut_sim::Trace = serde_json::from_str(&json).expect("trace deserializes");
    assert_eq!(back.kernels.len(), a.kernels.len());
    assert_eq!(back.total_ms, a.total_ms);
}
