//! Workspace determinism lint (`verify::detlint`): the virtual-time crates
//! (`serve`, `obs`, `sim`) must stay free of wall-clock reads, unordered
//! collections, and float-µs arithmetic outside the audited allowlist.
//!
//! This is the enforcement half of the bit-identical-summaries contract:
//! `tests/determinism.rs` proves the current build is deterministic, this
//! lint keeps the *sources* of nondeterminism from being reintroduced.

use netcut_repro::verify::detlint;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn the_deterministic_crates_pass_detlint() {
    let outcome = detlint::scan_workspace(workspace_root()).expect("scan");
    // Structural floor: an empty scan would vacuously pass.
    assert!(
        outcome.files_scanned > 20,
        "detlint walked only {} files; the crate roots moved?",
        outcome.files_scanned
    );
    assert!(
        outcome.is_clean(),
        "detlint found unaudited nondeterminism:\n{}",
        outcome.render_text()
    );
}

#[test]
fn the_allowlist_is_small_and_justified() {
    let text = std::fs::read_to_string(workspace_root().join(detlint::ALLOWLIST_FILE))
        .expect("committed allowlist");
    let entries = detlint::parse_allowlist(&text).expect("well-formed allowlist");
    // Every audited exception is wall-clock telemetry or float math that
    // never feeds back into virtual-time state. The list may only shrink
    // without review — growing it means a new nondeterminism source.
    assert!(
        !entries.is_empty() && entries.len() <= 8,
        "allowlist has {} entries; audit before growing it",
        entries.len()
    );
    for e in &entries {
        assert!(
            workspace_root().join(&e.file).is_file(),
            "allowlist names a missing file: {}",
            e.file
        );
    }
}

#[test]
fn detlint_still_catches_each_pattern() {
    // Guard against the scanner itself rotting: synthetic bad sources must
    // keep producing findings (the precedent of the metrics-registry scan).
    let wall = detlint::scan_source("x.rs", "fn f() { let t = std::time::Instant::now(); }");
    assert_eq!(wall.len(), 1);
    assert_eq!(wall[0].pattern, "wall-clock");

    let map = detlint::scan_source("x.rs", "use std::collections::HashMap;\n");
    assert_eq!(map.len(), 1);
    assert_eq!(map[0].pattern, "unordered-collection");

    let float = detlint::scan_source("x.rs", "let d_us = (x as f64).round() as u64;\n");
    assert_eq!(float.len(), 1);
    assert_eq!(float[0].pattern, "float-us");
}
