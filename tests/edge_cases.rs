//! Edge-case behaviour across crate boundaries: degenerate networks, empty
//! inputs, extreme configurations — the corners a downstream user will hit
//! eventually.

use netcut::netcut::NetCut;
use netcut::pareto::{best_meeting_deadline, pareto_frontier};
use netcut::removal::blockwise_trns;
use netcut_estimate::ProfilerEstimator;
use netcut_graph::{GraphError, HeadSpec, NetworkBuilder, Padding, Shape};
use netcut_hand::LoopBudget;
use netcut_sim::{fuse_network, DeviceModel, Precision, Session};
use netcut_train::SurrogateRetrainer;

fn session() -> Session {
    Session::new(DeviceModel::jetson_xavier(), Precision::Int8)
}

#[test]
fn single_node_network_is_measurable() {
    let mut b = NetworkBuilder::new("tiny", Shape::map(1, 4, 4));
    let x = b.input();
    let c = b.conv(x, 1, 1, 1, Padding::Same, "c");
    let net = b.finish(c).expect("valid");
    let m = session().measure(&net, 1);
    assert!(m.mean_ms > 0.0 && m.mean_ms < 0.1);
    assert_eq!(fuse_network(&net).len(), 1);
}

#[test]
fn blockless_network_rejects_cuts() {
    let mut b = NetworkBuilder::new("flat", Shape::map(1, 4, 4));
    let x = b.input();
    let c = b.conv(x, 2, 3, 1, Padding::Same, "c");
    let net = b.finish(c).expect("valid");
    assert!(matches!(
        net.cut_blocks(0),
        Err(GraphError::InvalidCutpoint { .. })
    ));
    assert!(blockwise_trns(&net, &HeadSpec::default()).is_empty());
}

#[test]
fn valid_padding_collapse_to_empty_map_is_priced_as_overhead() {
    // A Valid conv larger than its input produces a 0×0 map; the simulator
    // must not divide by zero and charges only launch overhead.
    let mut b = NetworkBuilder::new("collapse", Shape::map(1, 3, 3));
    let x = b.input();
    let c = b.conv(x, 4, 5, 1, Padding::Valid, "c");
    let net = b.finish(c).expect("builds");
    assert_eq!(net.output_shape().elements(), 0);
    let m = session().measure(&net, 2);
    assert!(m.mean_ms.is_finite() && m.mean_ms > 0.0);
}

#[test]
fn netcut_with_no_sources_selects_nothing() {
    let s = session();
    let estimator = ProfilerEstimator::profile(&s, &[], 1);
    let retrainer = SurrogateRetrainer::paper();
    let outcome = NetCut::new(&estimator, &retrainer).run(&[], 0.9, &s);
    assert!(outcome.proposals.is_empty());
    assert!(outcome.selected().is_none());
    assert_eq!(outcome.exploration_hours, 0.0);
}

#[test]
fn impossible_deadline_still_returns_proposals() {
    // At 1 µs nothing fits; NetCut proposes the deepest cut per family and
    // the selection (which requires a met estimate) is empty.
    let s = session();
    let sources = netcut_graph::zoo::paper_networks();
    let estimator = ProfilerEstimator::profile(&s, &sources, 3);
    let retrainer = SurrogateRetrainer::paper();
    let outcome = NetCut::new(&estimator, &retrainer).run(&sources, 0.001, &s);
    assert_eq!(outcome.proposals.len(), sources.len());
    assert!(outcome.selected().is_none());
    for p in &outcome.proposals {
        let family = sources
            .iter()
            .find(|n| n.name() == p.family)
            .expect("family exists");
        assert_eq!(
            p.cutpoint,
            family.num_blocks() - 1,
            "{} not fully cut",
            p.name
        );
    }
}

#[test]
fn pareto_of_empty_and_singleton_sets() {
    assert!(pareto_frontier(&[]).is_empty());
    assert!(best_meeting_deadline(&[], 1.0).is_none());
    let single = vec![netcut::CandidatePoint {
        name: "only".into(),
        family: "only".into(),
        cutpoint: 0,
        kept_layers: 1,
        layers_removed: 0,
        latency_ms: 0.5,
        estimated_ms: None,
        accuracy: 0.8,
        train_hours: 0.0,
    }];
    assert_eq!(pareto_frontier(&single), vec![0]);
}

#[test]
fn zero_jitter_device_measures_exactly() {
    let mut device = DeviceModel::jetson_xavier();
    device.jitter_rel = 0.0;
    let s = Session::new(device, Precision::Int8);
    let net = netcut_graph::zoo::mobilenet_v1(0.25);
    let m = s.measure(&net, 5);
    assert_eq!(m.std_ms, 0.0);
    assert!((m.mean_ms - s.ideal_latency_ms(&net)).abs() < 1e-12);
}

#[test]
fn extreme_budgets_behave() {
    let mut b = LoopBudget::paper();
    // A classifier with zero latency achieves the most frames possible.
    let max_frames = b.decisions_achieved(0.0);
    assert!(max_frames >= b.decisions_required);
    // Requiring absurd decision counts drives the visual budget negative,
    // and nothing sustains it.
    b.decisions_required = 10_000;
    assert!(b.visual_budget_ms() < 0.0);
    assert!(!b.sustains(0.0001));
}

#[test]
fn head_with_no_hidden_layers_works_end_to_end() {
    let head = HeadSpec {
        hidden: vec![],
        classes: 5,
    };
    let net = netcut_graph::zoo::mobilenet_v1(0.25)
        .cut_blocks(3)
        .expect("valid")
        .with_head(&head);
    assert_eq!(net.output_shape(), Shape::vector(5));
    let m = session().measure(&net, 7);
    assert!(m.mean_ms > 0.0);
    let retrained = netcut_train::SurrogateRetrainer::paper();
    use netcut_train::Retrainer;
    assert!(retrained.retrain(&net).accuracy > 0.3);
}

#[test]
fn many_class_head_scales() {
    let head = HeadSpec::with_classes(1000);
    let net = netcut_graph::zoo::squeezenet().backbone().with_head(&head);
    assert_eq!(net.output_shape(), Shape::vector(1000));
    netcut_verify::validate(&net).expect("valid with wide head");
}
