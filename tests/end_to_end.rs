//! Cross-crate integration tests: the full pipeline wired together in ways
//! the per-crate unit tests cannot exercise.

use netcut::netcut::NetCut;
use netcut::removal::blockwise_trns;
use netcut_estimate::{AnalyticalEstimator, ProfilerEstimator, SourceInfo, SvrParams};
use netcut_graph::{zoo, HeadSpec, Network};
use netcut_sim::{fuse_network, DeviceModel, Precision, Session};
use netcut_train::{Retrainer, SurrogateRetrainer};
use std::collections::HashMap;

fn session() -> Session {
    Session::new(DeviceModel::jetson_xavier(), Precision::Int8)
}

#[test]
fn every_blockwise_trn_of_every_family_is_deployable() {
    // Cut → head → fuse → measure must work for all 145 TRNs.
    let s = session();
    let head = HeadSpec::default();
    for source in zoo::paper_networks() {
        for trn in blockwise_trns(&source, &head) {
            netcut_verify::validate(&trn).expect("TRN is a valid graph");
            let kernels = fuse_network(&trn);
            assert!(!kernels.is_empty());
            let m = s.measure(&trn, 5);
            assert!(m.mean_ms > 0.0 && m.mean_ms.is_finite());
        }
    }
}

#[test]
fn netcut_with_both_estimator_kinds_agrees_on_the_family() {
    let s = session();
    let sources = zoo::paper_networks();
    let head = HeadSpec::default();
    let retrainer = SurrogateRetrainer::paper();
    // Profiler estimator.
    let profiler = ProfilerEstimator::profile(&s, &sources, 3);
    // Analytical estimator trained on a handful of measured TRNs.
    let mut source_latency = HashMap::new();
    let mut train_trns: Vec<Network> = Vec::new();
    let mut train_lat: Vec<f64> = Vec::new();
    for source in &sources {
        let mut adapted = source.backbone().with_head(&head);
        adapted.rename(source.name());
        source_latency.insert(source.name().to_owned(), s.measure(&adapted, 3).mean_ms);
        for k in [0, source.num_blocks() / 2, source.num_blocks() - 1] {
            let trn = source.cut_blocks(k).expect("valid cut").with_head(&head);
            train_lat.push(s.measure(&trn, 4).mean_ms);
            train_trns.push(trn);
        }
    }
    let info = SourceInfo::new(&sources, &source_latency);
    let samples: Vec<(&Network, f64)> = train_trns.iter().zip(train_lat.iter().copied()).collect();
    let svr = AnalyticalEstimator::fit(&samples, &info, &SvrParams::paper());

    let a = NetCut::new(&profiler, &retrainer).run(&sources, 0.9, &s);
    let b = NetCut::new(&svr, &retrainer).run(&sources, 0.9, &s);
    let fam_a = &a.selected().expect("selection").family;
    let fam_b = &b.selected().expect("selection").family;
    assert_eq!(fam_a, fam_b, "estimators disagree on the winning family");
}

#[test]
fn netcut_proposals_track_their_estimates() {
    // Measured latency of each proposal must be within 15 % of the
    // estimate that justified it (the estimator-quality contract NetCut
    // depends on).
    let s = session();
    let sources = zoo::paper_networks();
    let estimator = ProfilerEstimator::profile(&s, &sources, 3);
    let retrainer = SurrogateRetrainer::paper();
    let outcome = NetCut::new(&estimator, &retrainer).run(&sources, 0.9, &s);
    for p in &outcome.proposals {
        let est = p.estimated_ms.expect("proposal carries its estimate");
        let rel = (est - p.latency_ms).abs() / p.latency_ms;
        assert!(
            rel < 0.15,
            "{}: estimate {est:.3} vs measured {:.3}",
            p.name,
            p.latency_ms
        );
    }
}

#[test]
fn retrainer_is_consistent_between_exploration_paths() {
    // The same TRN must get the same accuracy whether reached by NetCut or
    // by the exhaustive sweep (determinism across code paths).
    let s = session();
    let sources = zoo::paper_networks();
    let retrainer = SurrogateRetrainer::paper();
    let estimator = ProfilerEstimator::profile(&s, &sources, 3);
    let outcome = NetCut::new(&estimator, &retrainer).run(&sources, 0.9, &s);
    let sweep =
        netcut::explore::exhaustive_blockwise(&sources, &HeadSpec::default(), &s, &retrainer, 1);
    for p in &outcome.proposals {
        if let Some(match_point) = sweep.points.iter().find(|q| q.name == p.name) {
            assert!(
                (match_point.accuracy - p.accuracy).abs() < 1e-12,
                "{}: {} vs {}",
                p.name,
                match_point.accuracy,
                p.accuracy
            );
        }
    }
}

#[test]
fn quantization_precision_affects_latency_ordering() {
    // INT8 < FP16 < FP32 end to end for a compute-heavy network.
    let net = zoo::resnet50();
    let device = DeviceModel::jetson_xavier();
    let latencies: Vec<f64> = [Precision::Int8, Precision::Fp16, Precision::Fp32]
        .into_iter()
        .map(|p| Session::new(device.clone(), p).measure(&net, 9).mean_ms)
        .collect();
    assert!(latencies[0] < latencies[1]);
    assert!(latencies[1] < latencies[2]);
}

#[test]
fn retrainer_rewards_shallower_cuts_of_the_same_family() {
    let retrainer = SurrogateRetrainer::paper();
    let head = HeadSpec::default();
    let net = zoo::inception_v3();
    let shallow = retrainer.retrain(&net.cut_blocks(1).expect("valid").with_head(&head));
    let deep = retrainer.retrain(&net.cut_blocks(9).expect("valid").with_head(&head));
    assert!(shallow.accuracy > deep.accuracy);
    assert!(shallow.train_hours > deep.train_hours);
}
