//! Cross-crate properties of the multi-exit refactor: the serve exit
//! table built from a real exploration is monotone (a deeper exit costs
//! at least as much latency and answers with at least as much accuracy),
//! and joint multi-head fine-tuning is bit-identical whether it runs
//! under a 1-job or an 8-job evaluation context — training is serial and
//! seed-driven, so the `--jobs` level above it must be invisible.

use netcut::eval::EvalContext;
use netcut_data::Dataset;
use netcut_serve::{build_ladder, ScenarioConfig};
use netcut_sim::{DeviceModel, Precision, Session};
use netcut_train::engine::MiniConfig;
use netcut_train::{
    calibrated_exit_curve, joint_fine_tune, JointOutcome, JointTrainConfig, MultiHeadNet,
    SurrogateRetrainer,
};
use proptest::prelude::*;

#[test]
fn scenario_exit_table_is_monotone_in_latency_and_accuracy() {
    let ladder = build_ladder(&ScenarioConfig::default()).expect("default scenario ladder");
    assert!(ladder.len() >= 2, "ladder needs at least two exits");
    for pair in ladder.rungs().windows(2) {
        assert!(
            pair[1].latency_us > pair[0].latency_us,
            "deeper exit must cost strictly more latency: {} -> {} µs",
            pair[0].latency_us,
            pair[1].latency_us
        );
        assert!(
            pair[1].accuracy >= pair[0].accuracy,
            "deeper exit must not lose accuracy: {} -> {}",
            pair[0].accuracy,
            pair[1].accuracy
        );
    }
    // The integer ppm view the serve summary reports inherits the same
    // ordering.
    for pair in ladder.exit_accuracy_ppm().windows(2) {
        assert!(pair[1] >= pair[0]);
    }
}

#[test]
fn joint_training_yields_a_monotone_calibrated_curve_at_both_seeds() {
    for seed in [11u64, 13] {
        let out = small_joint_run(seed, 1);
        assert_eq!(
            out.calibrated_accuracy,
            calibrated_exit_curve(&out.exit_accuracy)
        );
        for pair in out.calibrated_accuracy.windows(2) {
            assert!(
                pair[1] >= pair[0],
                "seed {seed}: calibrated curve dipped: {:?}",
                out.calibrated_accuracy
            );
        }
    }
}

/// One small joint fine-tune, run inside an [`EvalContext::par_map`] at
/// the given jobs level so the training sits under the same parallel
/// harness the CLI uses.
fn small_joint_run(seed: u64, jobs: usize) -> JointOutcome {
    let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
    let retrainer = SurrogateRetrainer::paper();
    let ctx = EvalContext::new(&session, &retrainer).with_jobs(jobs);
    // par_map over a two-element batch exercises the worker pool even for
    // the single outcome we keep.
    let mut outcomes = ctx.par_map(vec![seed, seed + 100], |_, s| {
        let cfg = MiniConfig {
            conv_blocks: 3,
            width: 6,
            seed: s,
        };
        let (train_data, test_data) = Dataset::hands(120, s).split(0.2);
        let mut net = MultiHeadNet::build(&cfg, 5);
        joint_fine_tune(
            &mut net,
            &train_data,
            &test_data,
            &JointTrainConfig {
                epochs: 2,
                seed: s,
                ..JointTrainConfig::default()
            },
        )
    });
    outcomes.swap_remove(0)
}

/// Bit patterns of every float a [`JointOutcome`] carries, so equality is
/// bit-identity rather than float comparison.
fn bits(out: &JointOutcome) -> (Vec<u32>, Vec<u64>, Vec<u64>) {
    (
        out.head_losses.iter().map(|l| l.to_bits()).collect(),
        out.exit_accuracy.iter().map(|a| a.to_bits()).collect(),
        out.calibrated_accuracy
            .iter()
            .map(|a| a.to_bits())
            .collect(),
    )
}

#[test]
fn multi_head_training_is_bit_identical_at_jobs_1_and_8() {
    for seed in [11u64, 13] {
        let serial = small_joint_run(seed, 1);
        let parallel = small_joint_run(seed, 8);
        assert_eq!(
            bits(&serial),
            bits(&parallel),
            "seed {seed}: joint fine-tune drifted between --jobs 1 and --jobs 8"
        );
    }
}

proptest! {
    /// The calibrated deployment curve is a running maximum: monotone
    /// nondecreasing, pointwise at least the raw curve, and never above
    /// the raw maximum seen so far.
    #[test]
    fn calibrated_curve_is_a_running_maximum(raw in prop::collection::vec(0.0f64..1.0, 1..16)) {
        let cal = calibrated_exit_curve(&raw);
        prop_assert_eq!(cal.len(), raw.len());
        let mut best = f64::NEG_INFINITY;
        for (c, r) in cal.iter().zip(&raw) {
            best = best.max(*r);
            prop_assert!(*c >= *r);
            prop_assert_eq!(*c, best);
        }
        for pair in cal.windows(2) {
            prop_assert!(pair[1] >= pair[0]);
        }
    }
}
