//! Integration of the robotic-hand application with the deployment
//! pipeline: the budget derived in `netcut-hand` is exactly the deadline
//! NetCut runs against, and the selected TRN must sustain the loop.

use netcut::netcut::NetCut;
use netcut_estimate::ProfilerEstimator;
use netcut_graph::zoo;
use netcut_hand::emg::generate_windows;
use netcut_hand::fusion::{fuse, FusionRule};
use netcut_hand::{ControlLoop, EmgClassifier, EmgTrainConfig, LoopBudget};
use netcut_sim::{DeviceModel, Precision, Session};
use netcut_train::SurrogateRetrainer;

#[test]
fn the_budget_is_the_paper_deadline_and_netcut_sustains_it() {
    let budget = LoopBudget::paper();
    assert!((budget.visual_budget_ms() - 0.9).abs() < 1e-9);
    let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
    let sources = zoo::paper_networks();
    let estimator = ProfilerEstimator::profile(&session, &sources, 3);
    let retrainer = SurrogateRetrainer::paper();
    let outcome =
        NetCut::new(&estimator, &retrainer).run(&sources, budget.visual_budget_ms(), &session);
    let selected = outcome.selected().expect("selection exists");
    // The selection sustains the loop by its *estimated* latency (what the
    // algorithm promises); measured latency lands within the frame period
    // either way.
    assert!(budget.sustains(selected.estimated_ms.expect("estimate recorded")));
    assert!(selected.latency_ms < budget.frame_period_ms());
    assert!(budget.decisions_achieved(selected.latency_ms) >= budget.decisions_required - 1);
}

#[test]
fn emg_plus_vision_fusion_beats_emg_alone_on_shared_reaches() {
    // Build per-reach estimates where vision is a (noisier) view of the
    // truth and EMG comes from the real classifier; fusing must not lose
    // to the weaker source and multi-frame fusion must denoise.
    let clf = EmgClassifier::train(&EmgTrainConfig {
        train_windows: 300,
        epochs: 25,
        ..EmgTrainConfig::default()
    });
    let windows = generate_windows(150, 404);
    let lp = ControlLoop {
        budget: LoopBudget::paper(),
        rule: FusionRule::Average,
    };
    let mut reaches = Vec::new();
    for window in &windows {
        // One object per reach: every frame re-reads the same EMG window
        // (the classifier is deterministic, so frames agree) fused with a
        // mediocre truth-anchored "vision" estimate.
        let truth = window.label.clone();
        let emg = clf.predict(window);
        let vision: Vec<f32> = truth.iter().map(|&t| 0.5 * t + 0.5 / 5.0).collect();
        let frame = fuse(&[emg, vision], FusionRule::Average);
        reaches.push((vec![frame; 5], truth));
    }
    let stats = lp.simulate_many(&reaches, 0.4);
    // Single-frame EMG-alone baseline.
    let emg_alone: f64 = windows
        .iter()
        .take(reaches.len())
        .map(|w| netcut_data::angular_similarity(&clf.predict(w), &w.label))
        .sum::<f64>()
        / reaches.len() as f64;
    assert!(
        stats.mean_similarity > emg_alone,
        "fused {:.3} must beat EMG alone {:.3}",
        stats.mean_similarity,
        emg_alone
    );
}
