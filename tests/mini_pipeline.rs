//! End-to-end *real-training* pipeline test: synthetic data →
//! augmentation → pretraining → layer removal → two-phase fine-tuning →
//! post-training quantization → angular-similarity evaluation. This is the
//! paper's §III-B pipeline executed with actual gradient descent at mini
//! scale.

use netcut_data::{AugmentConfig, Dataset};
use netcut_quant::{quantize_model, ActivationQuant};
use netcut_train::engine::{self, FineTuneConfig, MiniConfig};

#[test]
fn full_transfer_and_quantization_pipeline() {
    let cfg = MiniConfig {
        conv_blocks: 3,
        width: 8,
        seed: 17,
    };
    // §III-B-2: dataset with probabilistic labels; train/test split plus a
    // 10 % calibration subset of the training data (§III-B-4).
    let source = Dataset::objects(400, 71);
    let (train, test) = Dataset::hands(400, 72).split(0.3);
    let train = train.augmented(1, &AugmentConfig::default(), 73);
    let calibration = train.calibration_split(0.1, 74);

    // Pretrain on the complex task, cut one block, fine-tune per the
    // paper's recipe.
    let mut pretrained = engine::pretrain(&cfg, &source, 20);
    let weights = engine::snapshot(&mut pretrained);
    let mut model = engine::build_trimmed(&cfg, &weights, 1, 5);
    let ft = FineTuneConfig {
        head_epochs: 20,
        finetune_epochs: 10,
        ..FineTuneConfig::default()
    };
    let float_accuracy = engine::fine_tune(&mut model, &cfg, 1, &train, &test, &ft);
    assert!(
        float_accuracy > 0.55,
        "fine-tuned accuracy too low: {float_accuracy}"
    );

    // Post-training INT8 quantization with entropy calibration.
    let calib_batches: Vec<_> = calibration
        .epoch_batches(16, 75)
        .into_iter()
        .map(|idx| calibration.batch(&idx).0)
        .collect();
    let report = quantize_model(&mut model, &calib_batches, ActivationQuant::Entropy);
    assert!(report.quantized_params > 0);
    let quant_accuracy = engine::evaluate(&mut model, &test);
    let drop = float_accuracy - quant_accuracy;
    assert!(
        drop < 0.02,
        "quantization cost {drop:.4} accuracy (float {float_accuracy:.3}, int8 {quant_accuracy:.3})"
    );
}

#[test]
fn augmentation_does_not_hurt_generalization() {
    let cfg = MiniConfig {
        conv_blocks: 2,
        width: 6,
        seed: 23,
    };
    let (train, test) = Dataset::hands(320, 81).split(0.25);
    let ft = FineTuneConfig {
        head_epochs: 0,
        finetune_epochs: 12,
        finetune_lr: 1e-3,
        ..FineTuneConfig::default()
    };
    let mut plain = engine::build(&cfg, 5);
    let plain_acc = engine::fine_tune(&mut plain, &cfg, 0, &train, &test, &ft);
    let augmented = train.augmented(2, &AugmentConfig::default(), 82);
    let mut aug_model = engine::build(&cfg, 5);
    let aug_acc = engine::fine_tune(&mut aug_model, &cfg, 0, &augmented, &test, &ft);
    assert!(
        aug_acc > plain_acc - 0.02,
        "augmentation regressed accuracy: {plain_acc:.3} -> {aug_acc:.3}"
    );
}

#[test]
fn calibration_rules_agree_on_wellbehaved_activations() {
    // MinMax and entropy calibration should both keep the mini model's
    // accuracy; entropy never does worse on these outlier-free activations.
    let cfg = MiniConfig {
        conv_blocks: 2,
        width: 6,
        seed: 29,
    };
    let (train, test) = Dataset::hands(300, 91).split(0.4);
    let ft = FineTuneConfig {
        head_epochs: 10,
        finetune_epochs: 8,
        ..FineTuneConfig::default()
    };
    let calib: Vec<_> = (0..4)
        .map(|i| Dataset::hands(16, 300 + i).full_batch().0)
        .collect();
    let mut results = Vec::new();
    for rule in [ActivationQuant::MinMax, ActivationQuant::Entropy] {
        let mut model = engine::build(&cfg, 5);
        let acc = engine::fine_tune(&mut model, &cfg, 0, &train, &test, &ft);
        quantize_model(&mut model, &calib, rule);
        let quant_acc = engine::evaluate(&mut model, &test);
        results.push((acc, quant_acc));
    }
    for (float_acc, quant_acc) in &results {
        assert!(
            float_acc - quant_acc < 0.02,
            "quantization drop too large: {float_acc:.3} -> {quant_acc:.3}"
        );
    }
}
