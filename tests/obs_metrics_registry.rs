//! The registry-check lint the `netcut_obs::registry` module docs
//! promise: scan the workspace source for metric-call string literals and
//! fail when one names an unregistered series. A typo'd metric name would
//! otherwise create a fresh, forever-empty series instead of failing
//! anything — this test turns that silent hole into a red build. Adding a
//! metric means adding its `METRIC_NAMES` line in the same change.

use netcut_repro::obs::registry;
use std::path::{Path, PathBuf};

/// Call forms whose first string-literal argument is a metric name.
const CALLS: &[&str] = &[
    "counter_add(\"",
    "gauge_set(\"",
    "observe(\"",
    "observe_us(\"",
    "histogram_merge(\"",
    "labeled(\"",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("read workspace dir") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // Skip build output; everything else under crates/*/src is code.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Every `(file, line, name)` metric literal in the workspace sources.
fn metric_literals() -> Vec<(PathBuf, usize, String)> {
    let crates = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("crates");
    let mut files = Vec::new();
    rust_sources(&crates, &mut files);
    files.sort();
    assert!(
        files.len() > 20,
        "workspace scan found {} files",
        files.len()
    );

    let mut found = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(&file).expect("read source file");
        for (lineno, line) in text.lines().enumerate() {
            for call in CALLS {
                for (pos, _) in line.match_indices(call) {
                    let lit = &line[pos + call.len()..];
                    let Some(end) = lit.find('"') else { continue };
                    found.push((file.clone(), lineno + 1, lit[..end].to_string()));
                }
            }
        }
    }
    found
}

#[test]
fn every_metric_literal_in_the_tree_is_registered() {
    let literals = metric_literals();
    assert!(
        literals.len() > 15,
        "source scan looks broken: only {} metric literals found",
        literals.len()
    );
    let unregistered: Vec<String> = literals
        .iter()
        .filter(|(_, _, name)| !registry::is_registered(name))
        .map(|(file, line, name)| format!("{}:{line}: `{name}`", file.display()))
        .collect();
    assert!(
        unregistered.is_empty(),
        "unregistered metric name(s) — add them to \
         crates/obs/src/registry.rs METRIC_NAMES (kept sorted):\n  {}",
        unregistered.join("\n  ")
    );
}

#[test]
fn the_hot_serve_metrics_are_actually_in_the_tree() {
    // Guards the scanner itself: if the call-site extraction regresses,
    // the serve runtime's known metrics would vanish from the scan and
    // the lint above would pass vacuously.
    let names: std::collections::HashSet<String> = metric_literals()
        .into_iter()
        .map(|(_, _, name)| name)
        .collect();
    for expected in [
        "serve.batch_size",
        "serve.latency_us",
        "serve.queue_delay_us",
        "serve.shard.busy",
    ] {
        assert!(names.contains(expected), "scan lost `{expected}`");
    }
}

#[test]
fn the_hot_flush_literals_are_scanned_and_registered() {
    // The event loop's registry series are accumulated run-locally and
    // flushed once from `runtime.rs` (`HotMetrics::flush`); pin them
    // file-by-file so a rename there can't silently drop them out of both
    // the scan and the registry.
    let runtime: std::collections::HashSet<String> = metric_literals()
        .into_iter()
        .filter(|(file, _, _)| file.ends_with("serve/src/runtime.rs"))
        .map(|(_, _, name)| name)
        .collect();
    for expected in [
        "serve.served",
        "serve.missed",
        "serve.rejected",
        "serve.dropped",
        "serve.degraded",
        "serve.batch_size",
        "serve.latency_us",
        "serve.queue_delay_us",
    ] {
        assert!(
            runtime.contains(expected),
            "runtime.rs lost flush literal `{expected}`"
        );
        assert!(
            registry::is_registered(expected),
            "`{expected}` missing from METRIC_NAMES"
        );
    }
}
