//! End-to-end observability checks: a full NetCut exploration run must
//! emit a well-formed JSON-lines trace (schema v1, balanced and properly
//! nested spans, monotone timestamps, one span per explored candidate with
//! predicted and measured latency) and a loadable Chrome trace document.

use netcut_repro::core::netcut::NetCut;
use netcut_repro::estimate::ProfilerEstimator;
use netcut_repro::graph::zoo;
use netcut_repro::obs;
use netcut_repro::sim::{DeviceModel, Precision, Session};
use netcut_repro::train::SurrogateRetrainer;
use std::sync::{Arc, Mutex, MutexGuard};

/// The obs sink is process-global; serialize the tests that install one.
fn sink_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs NetCut over two small families with the given deadline.
fn run_explore() -> usize {
    let session = Session::new(DeviceModel::jetson_xavier(), Precision::Int8);
    let sources = [zoo::mobilenet_v1(0.25), zoo::mobilenet_v1(0.5)];
    let estimator = ProfilerEstimator::profile(&session, &sources, 7);
    let retrainer = SurrogateRetrainer::paper();
    let outcome = NetCut::new(&estimator, &retrainer).run(&sources, 0.9, &session);
    outcome.proposals.len()
}

#[test]
fn explore_emits_well_formed_jsonl_trace() {
    let _guard = sink_lock();
    let path = std::env::temp_dir().join("netcut_obs_trace_it.jsonl");
    let sink = obs::JsonLinesSink::create(&path).expect("create trace file");
    obs::set_sink(Arc::new(sink));
    let families = run_explore();
    obs::clear_sink();

    let text = std::fs::read_to_string(&path).expect("read trace");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() > 10,
        "explore run produced {} events",
        lines.len()
    );

    let mut last_ts = 0u64;
    let mut stack: Vec<u64> = Vec::new();
    let mut open_spans = 0usize;
    let mut candidate_spans = 0usize;
    let mut family_spans = 0usize;
    for (i, line) in lines.iter().enumerate() {
        // Every line parses independently as one JSON object.
        let event: serde_json::Value = line
            .parse()
            .unwrap_or_else(|e| panic!("line {i} is not JSON ({e:?}): {line}"));
        assert_eq!(
            event.get("v").and_then(serde_json::Value::as_u64),
            Some(u64::from(obs::SCHEMA_VERSION)),
            "line {i} has wrong schema version: {line}"
        );
        let ts = event
            .get("ts_us")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or_else(|| panic!("line {i} lacks ts_us: {line}"));
        assert!(ts >= last_ts, "timestamps regress at line {i}");
        last_ts = ts;
        let kind = event
            .get("kind")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("line {i} lacks kind: {line}"));
        let name = event.get("name").and_then(|v| v.as_str()).unwrap_or("");
        assert!(!name.is_empty(), "line {i} lacks a name: {line}");
        match kind {
            "span_begin" => {
                let id = event
                    .get("span")
                    .and_then(serde_json::Value::as_u64)
                    .expect("span id");
                // Nesting discipline: the parent is the innermost open span.
                let parent = event
                    .get("parent")
                    .and_then(serde_json::Value::as_u64)
                    .unwrap_or(0);
                assert_eq!(
                    parent,
                    stack.last().copied().unwrap_or(0),
                    "line {i}: span {id} has parent {parent} but innermost open \
                     span is {:?}",
                    stack.last()
                );
                stack.push(id);
                open_spans += 1;
            }
            "span_end" => {
                let id = event
                    .get("span")
                    .and_then(serde_json::Value::as_u64)
                    .expect("span id");
                assert_eq!(
                    stack.pop(),
                    Some(id),
                    "line {i}: span {id} closed out of order"
                );
                let dur = event.get("dur_us").and_then(serde_json::Value::as_u64);
                assert!(dur.is_some(), "line {i}: span_end lacks dur_us");
                let fields = event.get("fields");
                let field = |key: &str| fields.and_then(|f| f.get(key)).cloned();
                if name == "explore.candidate" {
                    candidate_spans += 1;
                    assert!(
                        field("measured_ms").and_then(|v| v.as_f64()).is_some(),
                        "candidate span lacks measured_ms: {line}"
                    );
                }
                if name == "netcut.family" {
                    family_spans += 1;
                    // The acceptance contract: every explored candidate's
                    // span carries both the prediction and the measurement.
                    for key in ["predicted_ms", "measured_ms"] {
                        assert!(
                            field(key).and_then(|v| v.as_f64()).is_some(),
                            "family span lacks {key}: {line}"
                        );
                    }
                    assert!(
                        field("accept").is_some() && field("reason").is_some(),
                        "family span lacks accept/reason: {line}"
                    );
                }
            }
            "instant" => {}
            other => panic!("line {i} has unknown kind `{other}`"),
        }
    }
    assert!(
        stack.is_empty(),
        "unclosed spans at end of trace: {stack:?}"
    );
    assert!(open_spans > 0);
    assert_eq!(family_spans, families, "one netcut.family span per source");
    assert!(
        candidate_spans >= families,
        "at least one explore.candidate span per proposal"
    );
}

#[test]
fn explore_emits_loadable_chrome_trace() {
    let _guard = sink_lock();
    let path = std::env::temp_dir().join("netcut_obs_trace_it_chrome.json");
    obs::set_sink(Arc::new(obs::ChromeTraceSink::create(&path)));
    run_explore();
    obs::clear_sink();

    let text = std::fs::read_to_string(&path).expect("read chrome trace");
    let _ = std::fs::remove_file(&path);
    // One JSON document in trace_event format.
    let doc: serde_json::Value = text.parse().expect("chrome trace is valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array")
        .clone();
    assert!(events.len() > 10);
    let mut begins = 0usize;
    let mut ends = 0usize;
    let mut family_ends_with_latency = 0usize;
    for e in &events {
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("phase");
        assert!(matches!(ph, "B" | "E" | "i"), "unknown phase {ph}");
        assert!(e.get("ts").and_then(serde_json::Value::as_u64).is_some());
        assert!(e.get("name").and_then(|v| v.as_str()).is_some());
        match ph {
            "B" => begins += 1,
            "E" => {
                ends += 1;
                if e.get("name").and_then(|v| v.as_str()) == Some("netcut.family") {
                    let args = e.get("args").expect("family args");
                    if args
                        .get("predicted_ms")
                        .and_then(serde_json::Value::as_f64)
                        .is_some()
                        && args
                            .get("measured_ms")
                            .and_then(serde_json::Value::as_f64)
                            .is_some()
                    {
                        family_ends_with_latency += 1;
                    }
                }
            }
            _ => {}
        }
    }
    assert_eq!(begins, ends, "every B event pairs with an E event");
    assert_eq!(family_ends_with_latency, 2);
}
