//! Integration tests asserting the paper's headline claims hold on the
//! simulated testbed — the quantitative contract of the reproduction.

use netcut::explore::{exhaustive_blockwise, off_the_shelf};
use netcut::netcut::NetCut;
use netcut::pareto::{best_meeting_deadline, frontier_expansion, relative_improvement};
use netcut::removal::{blockwise_candidate_count, blockwise_trns, iterative_trns};
use netcut_estimate::{LatencyEstimator, ProfilerEstimator};
use netcut_graph::{zoo, HeadSpec};
use netcut_sim::{DeviceModel, Precision, Session};
use netcut_train::{SurrogateRetrainer, TransferModel};

const DEADLINE_MS: f64 = 0.9;

fn session() -> Session {
    Session::new(DeviceModel::jetson_xavier(), Precision::Int8)
}

#[test]
fn fig1_mobilenet_v1_05_is_the_off_the_shelf_selection() {
    // §III-C: "to meet the 0.9 ms deadline, MobileNetV1 (0.5) can achieve
    // an accuracy of 0.81".
    let shelf = off_the_shelf(
        &zoo::paper_networks(),
        &HeadSpec::default(),
        &session(),
        &SurrogateRetrainer::paper(),
        1,
    );
    let best = best_meeting_deadline(&shelf.points, DEADLINE_MS).expect("a network meets 0.9 ms");
    assert_eq!(best.family, "mobilenet_v1_0.50");
    assert!(
        (best.accuracy - 0.81).abs() < 0.01,
        "accuracy {}",
        best.accuracy
    );
    assert!(best.latency_ms < 0.45);
    // There is an accuracy gap: slower nets are clearly better.
    let best_overall = shelf
        .points
        .iter()
        .map(|p| p.accuracy)
        .fold(f64::MIN, f64::max);
    assert!(best_overall - best.accuracy > 0.05, "no visible gap");
}

#[test]
fn search_space_is_about_148_trns() {
    // §IV-B: blockwise removal over the 7 networks yields 148 candidates
    // (145 with our block inventory).
    let count = blockwise_candidate_count(zoo::paper_networks().iter());
    assert!((140..=155).contains(&count), "count = {count}");
}

#[test]
fn fig4_blockwise_loses_less_than_003_accuracy() {
    // §IV-A: removing whole blocks instead of individual layers costs
    // < 0.03 accuracy for InceptionV3.
    let source = zoo::inception_v3();
    let head = HeadSpec::default();
    let model = TransferModel::paper();
    let source_layers = source.weighted_layer_count();
    let iterative = iterative_trns(&source, &head);
    for block_trn in blockwise_trns(&source, &head) {
        let removed = source_layers - block_trn.weighted_layer_count();
        let block_acc = model.accuracy(&block_trn);
        let best_iterative = iterative
            .iter()
            .filter(|t| source_layers - t.weighted_layer_count() >= removed)
            .map(|t| model.accuracy(t))
            .fold(f64::MIN, f64::max);
        assert!(
            best_iterative - block_acc < 0.03,
            "block {} loses {:.3}",
            block_trn.name(),
            best_iterative - block_acc
        );
    }
}

#[test]
fn fig7_trns_expand_the_pareto_frontier() {
    // §IV-C: max relative improvement ≈ 10.43 %, with many TRNs improving
    // on the off-the-shelf frontier.
    let s = session();
    let retrainer = SurrogateRetrainer::paper();
    let sources = zoo::paper_networks();
    let head = HeadSpec::default();
    let sweep = exhaustive_blockwise(&sources, &head, &s, &retrainer, 1);
    let shelf = off_the_shelf(&sources, &head, &s, &retrainer, 1);
    let expansion = frontier_expansion(&sweep.points, &shelf.points);
    assert!(
        (0.08..=0.14).contains(&expansion.max_improvement),
        "max improvement {:.3}",
        expansion.max_improvement
    );
    assert!(expansion.improving_points > 30);
    // The flagship example: one block off MobileNetV1 (0.5) ≈ +10.43 %.
    let cut1 = sweep
        .points
        .iter()
        .find(|p| p.name == "mobilenet_v1_0.50/cut1")
        .expect("cut1 exists");
    let improvement = relative_improvement(cut1, &shelf.points).expect("baseline exists");
    assert!(
        (0.09..=0.12).contains(&improvement),
        "cut1 improvement {improvement:.4}"
    );
}

#[test]
fn fig9_estimator_quality_ordering() {
    // §V-C: profiler and SVR errors are small single-digit percentages;
    // linear regression is several times worse. Checked here with the
    // profiler only (the SVR study lives in the fig09 harness); the
    // profiler must stay under 5 % on every family's mid cut.
    let s = session();
    let sources = zoo::paper_networks();
    let estimator = ProfilerEstimator::profile(&s, &sources, 3);
    let head = HeadSpec::default();
    for source in &sources {
        let trn = source
            .cut_blocks(source.num_blocks() / 2)
            .expect("mid cut valid")
            .with_head(&head);
        let predicted = estimator.estimate_ms(&trn);
        let truth = s.measure(&trn, 77).mean_ms;
        let rel = (predicted - truth).abs() / truth;
        assert!(
            rel < 0.08,
            "{}: profiler off by {:.1} %",
            trn.name(),
            rel * 100.0
        );
    }
}

#[test]
fn fig10_netcut_selects_a_trimmed_resnet_with_27x_class_speedup() {
    // §V-C: NetCut retrains a handful of networks instead of 148 and picks
    // a trimmed ResNet that beats the off-the-shelf selection.
    let s = session();
    let sources = zoo::paper_networks();
    let retrainer = SurrogateRetrainer::paper();
    let estimator = ProfilerEstimator::profile(&s, &sources, 3);
    let outcome = NetCut::new(&estimator, &retrainer).run(&sources, DEADLINE_MS, &s);
    let selected = outcome.selected().expect("a real-time TRN exists");
    assert_eq!(selected.family, "resnet50");
    assert!(selected.cutpoint > 0);
    // Accuracy improvement over the off-the-shelf selection in the paper's
    // 2–6 % band.
    let shelf = off_the_shelf(&sources, &HeadSpec::default(), &s, &retrainer, 1);
    let best_shelf = best_meeting_deadline(&shelf.points, DEADLINE_MS).expect("exists");
    let improvement = selected.accuracy / best_shelf.accuracy - 1.0;
    assert!(
        (0.02..=0.08).contains(&improvement),
        "improvement {improvement:.3}"
    );
    // Exploration speedup in the paper's order of magnitude (27×).
    let exhaustive = exhaustive_blockwise(&sources, &HeadSpec::default(), &s, &retrainer, 1);
    let speedup = exhaustive.total_train_hours / outcome.exploration_hours;
    assert!(
        (15.0..=60.0).contains(&speedup),
        "speedup {speedup:.1} outside the expected band"
    );
}

#[test]
fn exploration_hours_match_paper_scale() {
    // §V-C: 183 h for the exhaustive sweep on the K20m-class trainer.
    let exhaustive = exhaustive_blockwise(
        &zoo::paper_networks(),
        &HeadSpec::default(),
        &session(),
        &SurrogateRetrainer::paper(),
        1,
    );
    assert!(
        (120.0..=250.0).contains(&exhaustive.total_train_hours),
        "{} h",
        exhaustive.total_train_hours
    );
}
