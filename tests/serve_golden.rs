//! Golden-trace regression test for the serving runtime.
//!
//! `tests/golden/serve_seed11.json` is the committed summary of a seeded
//! ~1000-request serve run (deadline 900 µs, 2000 rps, 0.5 s, seed 11,
//! 2 workers, faults on — the CLI defaults at `--duration 0.5`). The
//! simulation is all-integer and fully deterministic, so this run must
//! reproduce the golden summary field for field on every platform and at
//! any `--jobs` setting.
//!
//! If a deliberate behaviour change alters the expected output,
//! regenerate the golden file with:
//!
//! ```text
//! cargo run -p netcut-cli -- serve --duration 0.5 --json \
//!     > tests/golden/serve_seed11.json
//! ```
//!
//! and explain the change in the commit message. Note: the committed
//! values are calibrated against the vendored offline `rand` stand-in
//! (see `offline/README.md`); building against the real registry `rand`
//! changes the workload stream and requires regeneration.

use netcut_serve::{run_scenario, ScenarioConfig};
use serde_json::Value;

const GOLDEN: &str = include_str!("golden/serve_seed11.json");

/// The scenario the golden file was generated from: CLI defaults with
/// `--duration 0.5`.
fn golden_config() -> ScenarioConfig {
    ScenarioConfig {
        duration_us: 500_000,
        ..ScenarioConfig::default()
    }
}

#[test]
fn serve_run_matches_the_golden_summary() {
    let golden: Value = GOLDEN.parse().expect("golden file is valid JSON");
    let actual: Value = run_scenario(golden_config())
        .to_json()
        .parse()
        .expect("summary renders valid JSON");

    let golden_map = golden.as_object().expect("golden summary is an object");
    let actual_map = actual.as_object().expect("summary is an object");

    // Field-by-field, so a regression names exactly what moved.
    let mut mismatches = Vec::new();
    for (key, expected) in golden_map {
        match actual_map.get(key) {
            Some(got) if got == expected => {}
            Some(got) => mismatches.push(format!("{key}: golden {expected} != actual {got}")),
            None => mismatches.push(format!("{key}: missing from actual summary")),
        }
    }
    for key in actual_map.keys() {
        if !golden_map.contains_key(key) {
            mismatches.push(format!("{key}: not in golden file (regenerate it?)"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "summary diverged from tests/golden/serve_seed11.json:\n  {}\n\
         (see file header for the regeneration command)",
        mismatches.join("\n  ")
    );
}

#[test]
fn golden_summary_sanity() {
    // Guards against committing a degenerate golden file: the scenario is
    // supposed to be a loaded, ~1000-request run that actually exercises
    // degradation and the fault injector.
    let golden: Value = GOLDEN.parse().expect("golden file is valid JSON");
    let field = |k: &str| golden.get(k).and_then(Value::as_u64).expect(k);
    assert!(
        (900..1100).contains(&field("total")),
        "total = {}",
        field("total")
    );
    assert!(field("degraded") > 0);
    assert!(field("served") > field("total") / 2);
    assert_eq!(
        field("total"),
        field("served") + field("missed") + field("rejected") + field("dropped")
    );
}
