//! Golden-trace regression tests for the serving runtime.
//!
//! `tests/golden/serve_seed11.json` is the committed summary of a seeded
//! ~1000-request serve run (deadline 900 µs, 2000 rps, 0.5 s, seed 11,
//! 2 workers, faults on — the CLI defaults at `--duration 0.5`);
//! `tests/golden/serve_seed11_batch2x.json` is the same scenario with
//! dynamic batching and two device shards (`--batch-max 8 --shards 2`).
//! The simulation is all-integer and fully deterministic, so these runs
//! must reproduce the golden summaries field for field on every platform
//! and at any `--jobs` setting — the CI matrix sets `NETCUT_TEST_JOBS`
//! to pin different parallelism per leg, and this test honours it.
//!
//! If a deliberate behaviour change alters the expected output,
//! regenerate the golden files with:
//!
//! ```text
//! cargo run -p netcut-cli -- serve --duration 0.5 --json \
//!     > tests/golden/serve_seed11.json
//! cargo run -p netcut-cli -- serve --duration 0.5 --json \
//!     --batch-max 8 --shards 2 > tests/golden/serve_seed11_batch2x.json
//! ```
//!
//! and explain the change in the commit message. The CI golden-freshness
//! step runs exactly those commands and fails on any diff, so a stale
//! golden cannot merge. Note: the committed values are calibrated against
//! the vendored offline `rand` stand-in (see `offline/README.md`);
//! building against the real registry `rand` changes the workload stream
//! and requires regeneration.

use netcut_serve::{run_scenario, ScenarioConfig};
use serde_json::Value;

const GOLDEN: &str = include_str!("golden/serve_seed11.json");
const GOLDEN_BATCH2X: &str = include_str!("golden/serve_seed11_batch2x.json");

/// Evaluation parallelism for this run: `NETCUT_TEST_JOBS` when set (the
/// CI determinism matrix pins 1 and 8), the library default of 1 otherwise.
fn jobs_from_env() -> usize {
    std::env::var("NETCUT_TEST_JOBS").ok().map_or(1, |v| {
        v.parse().expect("NETCUT_TEST_JOBS must be an integer")
    })
}

/// The scenario the golden files were generated from: CLI defaults with
/// `--duration 0.5`.
fn golden_config() -> ScenarioConfig {
    ScenarioConfig {
        duration_us: 500_000,
        jobs: jobs_from_env(),
        ..ScenarioConfig::default()
    }
}

/// Field-by-field comparison, so a regression names exactly what moved.
fn assert_matches_golden(golden_text: &str, cfg: ScenarioConfig, name: &str) {
    let golden: Value = golden_text.parse().expect("golden file is valid JSON");
    let actual: Value = run_scenario(cfg)
        .to_json()
        .parse()
        .expect("summary renders valid JSON");

    let golden_map = golden.as_object().expect("golden summary is an object");
    let actual_map = actual.as_object().expect("summary is an object");

    let mut mismatches = Vec::new();
    for (key, expected) in golden_map {
        match actual_map.get(key) {
            Some(got) if got == expected => {}
            Some(got) => mismatches.push(format!("{key}: golden {expected} != actual {got}")),
            None => mismatches.push(format!("{key}: missing from actual summary")),
        }
    }
    for key in actual_map.keys() {
        if !golden_map.contains_key(key) {
            mismatches.push(format!("{key}: not in golden file (regenerate it?)"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "summary diverged from tests/golden/{name}:\n  {}\n\
         (see file header for the regeneration command)",
        mismatches.join("\n  ")
    );
}

#[test]
fn serve_run_matches_the_golden_summary() {
    assert_matches_golden(GOLDEN, golden_config(), "serve_seed11.json");
}

#[test]
fn batched_sharded_run_matches_the_golden_summary() {
    assert_matches_golden(
        GOLDEN_BATCH2X,
        ScenarioConfig {
            batch_max: 8,
            shards: 2,
            ..golden_config()
        },
        "serve_seed11_batch2x.json",
    );
}

#[test]
fn golden_summary_sanity() {
    // Guards against committing a degenerate golden file: the scenario is
    // supposed to be a loaded, ~1000-request run that actually exercises
    // degradation and the fault injector.
    let golden: Value = GOLDEN.parse().expect("golden file is valid JSON");
    let field = |k: &str| golden.get(k).and_then(Value::as_u64).expect(k);
    assert!(
        (900..1100).contains(&field("total")),
        "total = {}",
        field("total")
    );
    assert!(field("degraded") > 0);
    assert!(field("served") > field("total") / 2);
    assert_eq!(
        field("total"),
        field("served") + field("missed") + field("rejected") + field("dropped")
    );
}

#[test]
fn batched_golden_summary_sanity() {
    // The batched/sharded golden must actually exercise the new machinery:
    // two shards, and at least one batch of two or more formed.
    let golden: Value = GOLDEN_BATCH2X.parse().expect("golden file is valid JSON");
    let field = |k: &str| golden.get(k).and_then(Value::as_u64).expect(k);
    assert_eq!(field("shards"), 2);
    assert_eq!(field("batch_max"), 8);
    let batches: Vec<u64> = golden
        .get("batch_histogram")
        .and_then(Value::as_array)
        .expect("batch_histogram")
        .iter()
        .map(|v| v.as_u64().expect("integer histogram"))
        .collect();
    assert!(
        batches[1..].iter().sum::<u64>() > 0,
        "no batches of 2+ in the golden: {batches:?}"
    );
    assert_eq!(
        field("total"),
        field("served") + field("missed") + field("rejected") + field("dropped")
    );
}
