//! Golden-trace regression test for the closed recalibration loop.
//!
//! `tests/golden/serve_seed11_recalib.json` is the committed summary of
//! the seeded drift scenario: deadline 900 µs, 2000 rps, 0.5 s, seed 11,
//! demo faults off, a +30% thermal-throttle window over 25%–85% of the
//! run, and the control loop closed with a 150 ms cooldown
//! (`--no-faults --thermal-ppm 1300000 --recalibrate
//! --recalib-cooldown-us 150000`). The run recalibrates mid-stream and
//! hot-swaps a new ladder generation, so this golden locks down the
//! whole loop — refit scale, swap count, generation tags, and the OBS005
//! alert — field for field at any `NETCUT_TEST_JOBS`.
//!
//! If a deliberate behaviour change alters the expected output,
//! regenerate the golden file with:
//!
//! ```text
//! cargo run -p netcut-cli -- serve --duration 0.5 --json --no-faults \
//!     --thermal-ppm 1300000 --recalibrate --recalib-cooldown-us 150000 \
//!     > tests/golden/serve_seed11_recalib.json
//! ```
//!
//! and explain the change in the commit message. The CI golden-freshness
//! step runs exactly that command and fails on any diff. The committed
//! values are calibrated against the vendored offline `rand` stand-in
//! (see `offline/README.md`).

use netcut_serve::{run_scenario, Scenario, ScenarioConfig};
use serde_json::Value;

const GOLDEN: &str = include_str!("golden/serve_seed11_recalib.json");
const GOLDEN_BASELINE: &str = include_str!("golden/serve_seed11.json");
const GOLDEN_TIMELINE: &str = include_str!("golden/serve_seed11_timeline.jsonl");

/// Evaluation parallelism for this run: `NETCUT_TEST_JOBS` when set (the
/// CI determinism matrix pins 1 and 8), the library default of 1 otherwise.
fn jobs_from_env() -> usize {
    std::env::var("NETCUT_TEST_JOBS").ok().map_or(1, |v| {
        v.parse().expect("NETCUT_TEST_JOBS must be an integer")
    })
}

/// The scenario the golden file was generated from (see module docs).
fn golden_config() -> ScenarioConfig {
    ScenarioConfig {
        duration_us: 500_000,
        jobs: jobs_from_env(),
        faults: false,
        thermal_ppm: 1_300_000,
        recalibrate: true,
        recalib_cooldown_us: 150_000,
        ..ScenarioConfig::default()
    }
}

#[test]
fn recalibrating_run_matches_the_golden_summary() {
    let golden: Value = GOLDEN.parse().expect("golden file is valid JSON");
    let actual: Value = run_scenario(golden_config())
        .to_json()
        .parse()
        .expect("summary renders valid JSON");

    let golden_map = golden.as_object().expect("golden summary is an object");
    let actual_map = actual.as_object().expect("summary is an object");

    let mut mismatches = Vec::new();
    for (key, expected) in golden_map {
        match actual_map.get(key) {
            Some(got) if got == expected => {}
            Some(got) => mismatches.push(format!("{key}: golden {expected} != actual {got}")),
            None => mismatches.push(format!("{key}: missing from actual summary")),
        }
    }
    for key in actual_map.keys() {
        if !golden_map.contains_key(key) {
            mismatches.push(format!("{key}: not in golden file (regenerate it?)"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "summary diverged from tests/golden/serve_seed11_recalib.json:\n  {}\n\
         (see file header for the regeneration command)",
        mismatches.join("\n  ")
    );
}

#[test]
fn recalib_golden_sanity() {
    // Guards against committing a golden that never exercised the loop:
    // the run must have swapped at least once, reached generation ≥ 1,
    // fired OBS005, and reported one scale factor per swap.
    let golden: Value = GOLDEN.parse().expect("golden file is valid JSON");
    let field = |k: &str| golden.get(k).and_then(Value::as_u64).expect(k);
    assert!(field("recalibrations") >= 1);
    let generations: Vec<u64> = golden["generations"]
        .as_array()
        .expect("generations")
        .iter()
        .map(|v| v.as_u64().expect("integer generation"))
        .collect();
    assert_eq!(generations.iter().sum::<u64>(), field("recalibrations"));
    assert_eq!(
        golden["recalib_scale_ppm"]
            .as_array()
            .expect("scales")
            .len() as u64,
        field("recalibrations")
    );
    assert!(
        golden["alerts"]["OBS005"].as_u64().expect("OBS005 count") >= 1,
        "every swap must be an OBS005 alert"
    );
    assert_eq!(
        field("total"),
        field("served") + field("missed") + field("rejected") + field("dropped")
    );
}

#[test]
fn open_loop_goldens_are_untouched_by_the_recalibration_path() {
    // The closed-loop machinery must be invisible when `--recalibrate` is
    // off: the pre-existing seed-11 goldens reproduce *byte*-identically
    // (stronger than the field-by-field checks in serve_golden.rs — the
    // summary and timeline renderers must not even reorder or add
    // fields for open-loop runs).
    let baseline = run_scenario(ScenarioConfig {
        duration_us: 500_000,
        jobs: jobs_from_env(),
        ..ScenarioConfig::default()
    });
    assert_eq!(
        baseline.to_json(),
        GOLDEN_BASELINE.trim_end(),
        "open-loop summary must stay byte-identical to tests/golden/serve_seed11.json"
    );

    let (_, timeline) = Scenario::build(ScenarioConfig {
        duration_us: 500_000,
        jobs: jobs_from_env(),
        batch_max: 8,
        shards: 2,
        ..ScenarioConfig::default()
    })
    .run_full();
    assert_eq!(
        timeline.to_jsonl(),
        GOLDEN_TIMELINE,
        "open-loop timeline must stay byte-identical to tests/golden/serve_seed11_timeline.jsonl"
    );
}
