//! Every shard of a many-shard run must report its busy gauge.
//!
//! The runtime used to pick gauge names from a static four-entry table,
//! so shards beyond the table silently reported nothing. Gauge names are
//! now built with `obs::labeled`, which works for any shard count — this
//! test runs five shards (one past the old table) and checks each one's
//! `serve.shard.busy{shard=N}` series exists. Kept in its own integration
//! binary: the obs sink and metrics registry are process-global.

use netcut_repro::obs;
use netcut_repro::serve::{Scenario, ScenarioConfig};
use std::sync::Arc;

#[test]
fn all_five_shards_report_their_busy_gauge() {
    obs::reset_metrics();
    obs::set_sink(Arc::new(obs::MemorySink::new()));
    let scenario = Scenario::build(ScenarioConfig {
        duration_us: 200_000,
        shards: 5,
        workers: 5,
        ..ScenarioConfig::default()
    });
    let _ = scenario.run_full();
    obs::clear_sink();

    let snapshot = obs::snapshot();
    for shard in 0..5 {
        let name = obs::labeled("serve.shard.busy", "shard", shard);
        assert!(
            snapshot.gauge(&name).is_some(),
            "`{name}` was never set — a shard fell off the telemetry"
        );
    }
    assert!(
        snapshot.gauge("serve.shard.busy{shard=5}").is_none(),
        "only the five real shards report"
    );
}
