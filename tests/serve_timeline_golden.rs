//! Golden-trace regression test for the windowed serving timeline.
//!
//! `tests/golden/serve_seed11_timeline.jsonl` is the committed schema-v1
//! timeline of the batched two-shard golden scenario (deadline 900 µs,
//! 2000 rps, 0.5 s, seed 11, faults on, `--batch-max 8 --shards 2`) —
//! the same run as `serve_seed11_batch2x.json`, windowed. The timeline is
//! all-integer and deterministic, so a fresh run must reproduce it field
//! for field at any `NETCUT_TEST_JOBS` and on every platform.
//!
//! If a deliberate behaviour change alters the expected output,
//! regenerate the golden file with:
//!
//! ```text
//! cargo run -p netcut-cli -- serve --duration 0.5 --batch-max 8 \
//!     --shards 2 --timeline-out tests/golden/serve_seed11_timeline.jsonl
//! ```
//!
//! and explain the change in the commit message. The CI golden-freshness
//! step runs exactly that command and fails on any diff. The committed
//! values are calibrated against the vendored offline `rand` stand-in
//! (see `offline/README.md`).

use netcut_serve::{Scenario, ScenarioConfig};
use serde_json::Value;

const GOLDEN: &str = include_str!("golden/serve_seed11_timeline.jsonl");

/// Evaluation parallelism for this run: `NETCUT_TEST_JOBS` when set (the
/// CI determinism matrix pins 1 and 8), the library default of 1 otherwise.
fn jobs_from_env() -> usize {
    std::env::var("NETCUT_TEST_JOBS").ok().map_or(1, |v| {
        v.parse().expect("NETCUT_TEST_JOBS must be an integer")
    })
}

/// The scenario the golden file was generated from: CLI defaults with
/// `--duration 0.5 --batch-max 8 --shards 2`.
fn golden_config() -> ScenarioConfig {
    ScenarioConfig {
        duration_us: 500_000,
        jobs: jobs_from_env(),
        batch_max: 8,
        shards: 2,
        ..ScenarioConfig::default()
    }
}

#[test]
fn timeline_matches_the_golden_file_field_by_field() {
    let (_, timeline) = Scenario::build(golden_config()).run_full();
    let actual_text = timeline.to_jsonl();

    let golden_lines: Vec<&str> = GOLDEN.lines().collect();
    let actual_lines: Vec<&str> = actual_text.lines().collect();
    assert_eq!(
        golden_lines.len(),
        actual_lines.len(),
        "line count diverged from the golden timeline \
         (see file header for the regeneration command)"
    );

    let mut mismatches = Vec::new();
    for (i, (g, a)) in golden_lines.iter().zip(&actual_lines).enumerate() {
        let golden: Value = g.parse().expect("golden line is valid JSON");
        let actual: Value = a.parse().expect("timeline line is valid JSON");
        let golden_map = golden.as_object().expect("golden line is an object");
        let actual_map = actual.as_object().expect("timeline line is an object");
        for (key, expected) in golden_map {
            match actual_map.get(key) {
                Some(got) if got == expected => {}
                Some(got) => {
                    mismatches.push(format!("line {}: {key}: golden {expected} != {got}", i + 1));
                }
                None => mismatches.push(format!("line {}: {key}: missing", i + 1)),
            }
        }
        for key in actual_map.keys() {
            if !golden_map.contains_key(key) {
                mismatches.push(format!(
                    "line {}: {key}: not in golden (regenerate?)",
                    i + 1
                ));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "timeline diverged from tests/golden/serve_seed11_timeline.jsonl:\n  {}\n\
         (see file header for the regeneration command)",
        mismatches.join("\n  ")
    );
}

#[test]
fn golden_timeline_sanity() {
    // Guards against committing a degenerate golden: the scenario is a
    // loaded two-shard run whose timeline must cover every shard in every
    // window, carry residual cells, and have fired at least one alert.
    let lines: Vec<Value> = GOLDEN
        .lines()
        .map(|l| l.parse().expect("golden line is valid JSON"))
        .collect();
    let kind = |v: &Value| v.get("kind").and_then(Value::as_str).map(str::to_owned);
    let header = &lines[0];
    assert_eq!(kind(header).as_deref(), Some("header"));
    assert_eq!(header.get("v").and_then(Value::as_u64), Some(1));
    let windows = header
        .get("windows")
        .and_then(Value::as_u64)
        .expect("windows");
    let shards = header
        .get("shards")
        .and_then(Value::as_array)
        .expect("shards")
        .len() as u64;
    assert_eq!(shards, 2, "golden covers both shards");

    let rows: Vec<&Value> = lines
        .iter()
        .filter(|l| kind(l).as_deref() == Some("window"))
        .collect();
    assert_eq!(
        rows.len() as u64,
        windows * shards,
        "full window × shard grid"
    );
    for row in &rows {
        let u = |k: &str| row.get(k).and_then(Value::as_u64).expect(k);
        assert_eq!(
            u("arrivals"),
            u("served") + u("missed") + u("rejected") + u("dropped"),
            "window accounting identity"
        );
    }
    assert!(
        lines.iter().any(|l| kind(l).as_deref() == Some("residual")),
        "golden carries residual cells"
    );
    assert!(
        lines.iter().any(|l| kind(l).as_deref() == Some("alert")),
        "golden scenario fires at least one alert"
    );
}
